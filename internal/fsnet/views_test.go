package fsnet

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The view suite pins the gossip wire extension: codec bounds, the
// pull/push exchange against a real server, the negotiation gate (a v3
// node must never emit view frames toward a pre-v3 peer), the
// mid-stream-cut poisoning contract, and the hint piggyback riding
// ordinary opens in both directions.

// testViews is a scripted ViewSource: a mutable epoch+members pair with
// highest-epoch-wins ApplyView semantics and a log of every hint noted.
type testViews struct {
	self string

	mu      sync.Mutex
	epoch   uint64
	members []string
	noted   map[string]uint64 // latest hinted epoch per sender
}

func newTestViews(self string, epoch uint64, members ...string) *testViews {
	return &testViews{self: self, epoch: epoch, members: members, noted: make(map[string]uint64)}
}

func (v *testViews) Self() string { return v.self }

func (v *testViews) Epoch() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.epoch
}

func (v *testViews) ViewSnapshot() (uint64, []string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.epoch, append([]string(nil), v.members...)
}

func (v *testViews) ApplyView(epoch uint64, members []string) (bool, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if epoch <= v.epoch {
		return false, nil
	}
	v.epoch = epoch
	v.members = append([]string(nil), members...)
	return true, nil
}

func (v *testViews) NoteViewEpoch(addr string, epoch uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if epoch > v.noted[addr] {
		v.noted[addr] = epoch
	}
}

func (v *testViews) notedEpoch(addr string) uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.noted[addr]
}

func TestViewCodecRoundTrip(t *testing.T) {
	epoch, sender, err := decodeViewMsg(appendViewMsg(nil, 42, "10.0.0.1:7070"))
	if err != nil || epoch != 42 || sender != "10.0.0.1:7070" {
		t.Fatalf("viewMsg round trip = (%d, %q, %v)", epoch, sender, err)
	}

	members := []string{"a:1", "b:2", "c:3"}
	e, s, m, err := decodeViewPush(appendViewPush(nil, 7, "self:9", members))
	if err != nil || e != 7 || s != "self:9" || len(m) != 3 || m[0] != "a:1" || m[2] != "c:3" {
		t.Fatalf("viewPush round trip = (%d, %q, %v, %v)", e, s, m, err)
	}

	// An empty member list is legal (a goodbye view shrinking past us).
	if _, _, m, err := decodeViewPush(appendViewPush(nil, 3, "x:1", nil)); err != nil || len(m) != 0 {
		t.Fatalf("empty viewPush = (%v, %v), want legal empty", m, err)
	}

	// Hostile frames: a member count beyond the cap, an empty member
	// address, and trailing garbage must all be rejected.
	bad := appendUvarint(nil, 1)
	bad = appendString(bad, "x:1")
	bad = appendUvarint(bad, maxViewMembers+1)
	if _, _, _, err := decodeViewPush(bad); err == nil {
		t.Error("oversized member count decoded")
	}
	if _, _, _, err := decodeViewPush(appendViewPush(nil, 1, "x:1", []string{""})); err == nil {
		t.Error("empty member address decoded")
	}
	if _, _, err := decodeViewMsg(append(appendViewMsg(nil, 1, "x:1"), 0xff)); err == nil {
		t.Error("trailing bytes decoded")
	}
}

// TestViewPullPushExchange drives the full exchange against a real
// server: pull when the server is newer (full view comes back), pull
// when it is older (bare epoch hint comes back, and the server learns
// our epoch), push installing a view, and a stale push acked with the
// server's higher epoch.
func TestViewPullPushExchange(t *testing.T) {
	sv := newTestViews("server:1", 5, "server:1", "peer:2")
	store := seededStore(t, 4)
	srv, addr := startServer(t, store, ServerConfig{GroupSize: 2, CacheCapacity: 8, Views: sv})

	cv := newTestViews("client:1", 1, "client:1")
	client, err := Dial(addr, ClientConfig{CacheCapacity: 4, Views: cv})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Server newer: the pull answers with the full view.
	epoch, members, err := client.ViewPull()
	if err != nil {
		t.Fatalf("ViewPull: %v", err)
	}
	if epoch != 5 || len(members) != 2 || members[0] != "server:1" {
		t.Fatalf("ViewPull = (%d, %v), want (5, [server:1 peer:2])", epoch, members)
	}
	// The pull itself carried our epoch; the server noted it for a
	// symmetric pull-back decision.
	if got := sv.notedEpoch("client:1"); got != 1 {
		t.Errorf("server noted client epoch %d, want 1", got)
	}

	// Client newer: the pull answers with a bare epoch hint (nil
	// members), never a full view.
	if _, err := cv.ApplyView(9, []string{"client:1", "other:3"}); err != nil {
		t.Fatal(err)
	}
	epoch, members, err = client.ViewPull()
	if err != nil {
		t.Fatalf("ViewPull (client newer): %v", err)
	}
	if members != nil || epoch != 5 {
		t.Fatalf("ViewPull (client newer) = (%d, %v), want (5, nil)", epoch, members)
	}

	// Push installs on the server and the ack echoes the new epoch.
	remote, err := client.ViewPush(9, []string{"client:1", "other:3"})
	if err != nil {
		t.Fatalf("ViewPush: %v", err)
	}
	if remote != 9 || sv.Epoch() != 9 {
		t.Fatalf("ViewPush installed epoch %d (ack %d), want 9", sv.Epoch(), remote)
	}

	// A stale push is not an error: the ack carries the server's higher
	// epoch so the pusher learns it lost.
	remote, err = client.ViewPush(2, []string{"client:1"})
	if err != nil {
		t.Fatalf("stale ViewPush: %v", err)
	}
	if remote != 9 || sv.Epoch() != 9 {
		t.Fatalf("stale ViewPush: server %d, ack %d, want 9/9", sv.Epoch(), remote)
	}

	// View frames must not count as requests: the stats contract ties
	// Requests to opens/stats/writes only.
	if st := srv.Stats(); st.Requests != 0 || st.Errors != 0 {
		t.Errorf("view exchanges counted: requests=%d errors=%d, want 0/0", st.Requests, st.Errors)
	}
}

// TestViewExchangeAgainstUnconfiguredServer: a server without Views
// refuses the exchange with a typed server error, and the refusal does
// not poison the connection.
func TestViewExchangeAgainstUnconfiguredServer(t *testing.T) {
	store := seededStore(t, 2)
	_, addr := startServer(t, store, ServerConfig{GroupSize: 2, CacheCapacity: 8})
	cv := newTestViews("client:1", 3, "client:1")
	client, err := Dial(addr, ClientConfig{CacheCapacity: 4, Views: cv})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, _, err := client.ViewPull(); err == nil {
		t.Fatal("ViewPull against a viewless server succeeded")
	}
	if _, err := client.Open("/data/f000"); err != nil {
		t.Fatalf("open after refused pull: %v", err)
	}
	if st := client.Stats(); st.BrokenConns != 0 {
		t.Errorf("refused pull broke the connection: %+v", st)
	}
}

// TestViewFramesGatedByNegotiation is the gossip half of the
// negotiation matrix: against a server capped at v2 or v1, a client
// configured with Views must keep the wire byte-identical to a
// view-less client — exchanges fail locally with ErrViewUnsupported,
// no hint frames ride the batches, and the session stays healthy.
func TestViewFramesGatedByNegotiation(t *testing.T) {
	for _, tc := range []struct {
		name       string
		svrMax     int
		wantVer    int
		wantErrors uint64 // the v1 legacy downgrade costs one counted probe error
	}{
		{name: "v2-server", svrMax: 2, wantVer: protocolV2, wantErrors: 0},
		{name: "v1-server", svrMax: 1, wantVer: protocolV1, wantErrors: 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			store := seededStore(t, 6)
			srv, addr := startServer(t, store, ServerConfig{
				GroupSize: 2, CacheCapacity: 8, MaxProtocol: tc.svrMax,
			})
			cv := newTestViews("client:1", 4, "client:1")
			client, err := Dial(addr, ClientConfig{CacheCapacity: 4, Views: cv})
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			open := func() {
				t.Helper()
				for i := 0; i < 6; i++ {
					if _, err := client.Open(fmt.Sprintf("/data/f%03d", i)); err != nil {
						t.Fatalf("open f%03d: %v", i, err)
					}
				}
			}
			open()
			if got := client.ProtocolVersion(); got != tc.wantVer {
				t.Fatalf("negotiated %d, want %d", got, tc.wantVer)
			}
			if _, _, err := client.ViewPull(); !errors.Is(err, ErrViewUnsupported) {
				t.Fatalf("ViewPull on v%d = %v, want ErrViewUnsupported", tc.wantVer, err)
			}
			if _, err := client.ViewPush(9, []string{"client:1"}); !errors.Is(err, ErrViewUnsupported) {
				t.Fatalf("ViewPush on v%d = %v, want ErrViewUnsupported", tc.wantVer, err)
			}
			// The refusal is local: had a frame leaked onto a v1
			// lock-step or v2 session, the stream would desync and these
			// opens would fail or count server errors.
			open()
			st := srv.Stats()
			if st.Errors != tc.wantErrors {
				t.Errorf("server errors = %d, want %d", st.Errors, tc.wantErrors)
			}
			if cs := client.Stats(); cs.BrokenConns != 0 {
				t.Errorf("client broke %d connections on refused view calls", cs.BrokenConns)
			}
		})
	}
}

// TestViewFrameAuditOnV2Wire watches the raw frames a Views-configured
// client puts on a v2 wire: nothing but opens. This is the direct form
// of the "never emits" guarantee — the real-server case above can only
// observe side effects, this one records every frame type.
func TestViewFrameAuditOnV2Wire(t *testing.T) {
	var mu sync.Mutex
	var seen []uint8
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				r := bufio.NewReader(conn)
				w := bufio.NewWriter(conn)
				typ, payload, err := readFrame(r)
				if err != nil || typ != msgHello {
					return
				}
				putFrameBuf(payload)
				if writeHello(w, msgHelloOK, protocolV2) != nil || w.Flush() != nil {
					return
				}
				for {
					typ, id, payload, err := readFrameID(r)
					if err != nil {
						return
					}
					putFrameBuf(payload)
					mu.Lock()
					seen = append(seen, typ)
					mu.Unlock()
					if typ != msgOpen {
						return
					}
					resp := appendErrorResponse(nil, errorResponse{Code: CodeNotFound, Message: "audit server holds nothing"})
					if putFrameID(w, msgError, id, resp) != nil || w.Flush() != nil {
						return
					}
				}
			}(conn)
		}
	}()

	cv := newTestViews("client:1", 11, "client:1")
	client, err := Dial(l.Addr().String(), ClientConfig{CacheCapacity: 4, Views: cv, MaxRetries: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 3; i++ {
		if _, err := client.Open(fmt.Sprintf("/x/f%d", i)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("open %d = %v, want ErrNotFound", i, err)
		}
	}
	if _, _, err := client.ViewPull(); !errors.Is(err, ErrViewUnsupported) {
		t.Fatalf("ViewPull = %v, want ErrViewUnsupported", err)
	}
	if _, err := client.Open("/x/after"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("open after pull = %v, want ErrNotFound", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 4 {
		t.Fatalf("server saw %d frames, want 4 opens: %v", len(seen), seen)
	}
	for i, typ := range seen {
		if typ != msgOpen {
			t.Errorf("frame %d has type %d, want only opens (%d) on a v2 wire", i, typ, msgOpen)
		}
	}
}

// TestViewPushMidStreamCutPoisonsOnlyInFlight mirrors the v3 streaming
// cut test for the view exchange: a server that dies mid-frame while
// answering a pull fails that call with the typed transport error, and
// nothing else — the next call redials and completes.
func TestViewPushMidStreamCutPoisonsOnlyInFlight(t *testing.T) {
	var pulls atomic.Int32
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				r := bufio.NewReader(conn)
				w := bufio.NewWriter(conn)
				typ, payload, err := readFrame(r)
				if err != nil || typ != msgHello {
					return
				}
				putFrameBuf(payload)
				if writeHello(w, msgHelloOK, protocolV3) != nil || w.Flush() != nil {
					return
				}
				for {
					typ, id, payload, err := readFrameID(r)
					if err != nil {
						return
					}
					switch typ {
					case msgViewHint:
						// The client's piggybacked hint; advisory, drop it.
						putFrameBuf(payload)
					case msgOpen:
						req, derr := decodeOpenRequest(payload)
						putFrameBuf(payload)
						if derr != nil {
							return
						}
						if writeChunk(w, id, req.Path, []byte("whole "+req.Path)) != nil {
							return
						}
						if putFrameID(w, msgGroupEnd, id, appendGroupEnd(nil, 1)) != nil || w.Flush() != nil {
							return
						}
					case msgViewPull:
						putFrameBuf(payload)
						reply := appendFrameID(nil, msgViewPush, id,
							appendViewPush(nil, 9, "srv:1", []string{"srv:1", "other:2"}))
						if pulls.Add(1) == 1 {
							// Half the push frame, then a hard cut.
							if _, err := conn.Write(reply[:len(reply)-4]); err != nil {
								return
							}
							time.Sleep(10 * time.Millisecond) // let the bytes land before the RST
							return
						}
						if _, err := conn.Write(reply); err != nil {
							return
						}
					default:
						putFrameBuf(payload)
						return
					}
				}
			}(conn)
		}
	}()

	cv := newTestViews("client:1", 1, "client:1")
	client, err := Dial(l.Addr().String(), ClientConfig{CacheCapacity: 4, Views: cv, MaxRetries: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Call 1: a clean open proves the session up.
	if data, err := client.Open("/v/one"); err != nil || string(data) != "whole /v/one" {
		t.Fatalf("open 1 = (%q, %v)", data, err)
	}
	// Call 2: the pull's reply is cut mid-frame; the typed error lands
	// on this call.
	if _, _, err := client.ViewPull(); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("cut ViewPull = %v, want ErrConnBroken", err)
	}
	// Call 3: a fresh open redials; the poison touched in-flight calls
	// only.
	if data, err := client.Open("/v/three"); err != nil || string(data) != "whole /v/three" {
		t.Fatalf("open 3 (post-cut) = (%q, %v)", data, err)
	}
	// Call 4: the retried pull on the new connection completes and
	// hands back the newer view (installing it is the cluster layer's
	// job, not the transport's).
	epoch, members, err := client.ViewPull()
	if err != nil || epoch != 9 || len(members) != 2 {
		t.Fatalf("ViewPull retry = (%d, %v, %v)", epoch, members, err)
	}
	if st := client.Stats(); st.BrokenConns != 1 {
		t.Errorf("BrokenConns = %d, want exactly the scripted cut", st.BrokenConns)
	}
}

// TestHintPiggybackBothDirections: one ordinary open is enough for both
// sides to learn each other's epoch — the client's hint leads its first
// request batch, the server's hint leads its first reply batch. No
// extra round trips, no background loop.
func TestHintPiggybackBothDirections(t *testing.T) {
	sv := newTestViews("server:1", 5, "server:1")
	store := seededStore(t, 2)
	_, addr := startServer(t, store, ServerConfig{GroupSize: 2, CacheCapacity: 8, Views: sv})

	cv := newTestViews("client:1", 3, "client:1")
	client, err := Dial(addr, ClientConfig{CacheCapacity: 4, Views: cv})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	// The hints frame their batches, so by the time the open returned,
	// both notes had already been processed in order.
	if got := sv.notedEpoch("client:1"); got != 3 {
		t.Errorf("server noted client epoch %d, want 3", got)
	}
	if got := cv.notedEpoch("server:1"); got != 5 {
		t.Errorf("client noted server epoch %d, want 5", got)
	}
}

// TestHintDedupPerEpoch: the hint is per-connection state, re-sent only
// when the epoch moves — a steady stream of opens pays for exactly one
// hint, and an epoch bump pays for exactly one more.
func TestHintDedupPerEpoch(t *testing.T) {
	sv := newTestViews("server:1", 1, "server:1")
	store := seededStore(t, 8)
	_, addr := startServer(t, store, ServerConfig{GroupSize: 2, CacheCapacity: 8, Views: sv})

	cv := newTestViews("client:1", 2, "client:1")
	client, err := Dial(addr, ClientConfig{CacheCapacity: 0, Views: cv})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 4; i++ {
		if _, err := client.Open(fmt.Sprintf("/data/f%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := sv.notedEpoch("client:1"); got != 2 {
		t.Fatalf("server noted epoch %d, want 2", got)
	}
	if _, err := cv.ApplyView(7, []string{"client:1"}); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 8; i++ {
		if _, err := client.Open(fmt.Sprintf("/data/f%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := sv.notedEpoch("client:1"); got != 7 {
		t.Fatalf("server noted epoch %d after bump, want 7", got)
	}
}
