package fsnet

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// The router suite covers the hooks the cluster peer tier composes from:
// the ServerConfig.Router open interception point, Client.OpenGroup's
// whole-group staging, and Client.NoteAccess's piggyback relay.

// scriptedRouter handles paths under /remote/ with a fixed two-file
// group and records every call; everything else falls through to the
// local serving path.
type scriptedRouter struct {
	calls       atomic.Uint64
	lastAccess  atomic.Value // []string
	notFound    bool
	malformed   bool
	internalErr bool
}

func (r *scriptedRouter) RouteOpen(path string, accessed []string) ([]GroupFile, bool, error) {
	r.calls.Add(1)
	cp := make([]string, len(accessed))
	copy(cp, accessed)
	r.lastAccess.Store(cp)
	if !strings.HasPrefix(path, "/remote/") {
		return nil, false, nil
	}
	switch {
	case r.notFound:
		return nil, true, fmt.Errorf("%w: %s", ErrNotFound, path)
	case r.internalErr:
		return nil, true, errors.New("peer tier exploded")
	case r.malformed:
		return []GroupFile{{Path: "/wrong/head", Data: []byte("x")}}, true, nil
	}
	return []GroupFile{
		{Path: path, Data: []byte("routed " + path)},
		{Path: path + ".member", Data: []byte("routed member")},
	}, true, nil
}

func TestClusterRouterHandlesOpen(t *testing.T) {
	store := seededStore(t, 4)
	router := &scriptedRouter{}
	srv, addr := startServer(t, store, ServerConfig{GroupSize: 3, Router: router})
	client, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// A routed path is served from the router even though the local
	// store has never heard of it.
	data, err := client.Open("/remote/hot")
	if err != nil {
		t.Fatalf("routed open: %v", err)
	}
	if string(data) != "routed /remote/hot" {
		t.Errorf("routed open = %q", data)
	}
	// The group member arrived alongside and is a local cache hit now.
	if !client.Contains("/remote/hot.member") {
		t.Error("group member of routed reply not installed")
	}

	// A local path falls through to the store.
	data, err = client.Open("/data/f001")
	if err != nil {
		t.Fatalf("local open: %v", err)
	}
	if string(data) != "contents of /data/f001" {
		t.Errorf("local open = %q", data)
	}

	st := srv.Stats()
	if st.RemoteOpens != 1 {
		t.Errorf("RemoteOpens = %d, want 1", st.RemoteOpens)
	}
	if st.Requests != 2 {
		t.Errorf("Requests = %d, want 2", st.Requests)
	}
	// The routed group must not have perturbed the local cache: only the
	// local open staged anything.
	if st.Cache.GroupFetches != 1 {
		t.Errorf("Cache.GroupFetches = %d, want 1 (router bypasses local cache)", st.Cache.GroupFetches)
	}
	if router.calls.Load() != 2 {
		t.Errorf("router consulted %d times, want 2", router.calls.Load())
	}
}

func TestClusterRouterNotFound(t *testing.T) {
	store := seededStore(t, 2)
	_, addr := startServer(t, store, ServerConfig{Router: &scriptedRouter{notFound: true}})
	client, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Open("/remote/missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("routed missing open err = %v, want ErrNotFound", err)
	}
}

func TestClusterRouterErrorsStayPerRequest(t *testing.T) {
	store := seededStore(t, 2)
	for name, router := range map[string]*scriptedRouter{
		"malformed": {malformed: true},
		"internal":  {internalErr: true},
	} {
		_, addr := startServer(t, store, ServerConfig{Router: router})
		client, err := Dial(addr, ClientConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.Open("/remote/x"); err == nil {
			t.Errorf("%s: routed open succeeded", name)
		}
		// The error was a typed reply, not a poisoned stream: the same
		// connection keeps serving local paths.
		if _, err := client.Open("/data/f000"); err != nil {
			t.Errorf("%s: local open after routed error: %v", name, err)
		}
		client.Close()
	}
}

// TestClusterRouterSeesPiggyback: the router receives the client's
// piggybacked history so it can relay it to the owning peer.
func TestClusterRouterSeesPiggyback(t *testing.T) {
	store := seededStore(t, 4)
	router := &scriptedRouter{}
	_, addr := startServer(t, store, ServerConfig{Router: router})
	client, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	// The second open is a cache hit; it rides the next fetch's piggyback.
	if _, err := client.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Open("/remote/next"); err != nil {
		t.Fatal(err)
	}
	accessed, _ := router.lastAccess.Load().([]string)
	if len(accessed) != 1 || accessed[0] != "/data/f000" {
		t.Errorf("router saw accessed=%v, want [/data/f000]", accessed)
	}
}

// TestClusterOpenGroup: the whole group comes back, demanded file first,
// and repeated calls always refetch (they must observe group evolution).
func TestClusterOpenGroup(t *testing.T) {
	store := seededStore(t, 6)
	_, addr := startServer(t, store, ServerConfig{GroupSize: 3, SuccessorCapacity: 2})
	client, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Train the server: f000 -> f001, repeatedly.
	for i := 0; i < 6; i++ {
		if _, err := client.Open("/data/f000"); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Open("/data/f001"); err != nil {
			t.Fatal(err)
		}
	}

	group, err := client.OpenGroup("/data/f000")
	if err != nil {
		t.Fatal(err)
	}
	if len(group) < 2 {
		t.Fatalf("group of %d files, want >= 2 after training", len(group))
	}
	if group[0].Path != "/data/f000" || string(group[0].Data) != "contents of /data/f000" {
		t.Errorf("group head = %q (%q)", group[0].Path, group[0].Data)
	}
	found := false
	for _, f := range group[1:] {
		if f.Path == "/data/f001" {
			found = true
			if string(f.Data) != "contents of /data/f001" {
				t.Errorf("member data = %q", f.Data)
			}
		}
	}
	if !found {
		t.Errorf("trained successor /data/f001 missing from group %v", groupPaths(group))
	}

	// OpenGroup bypasses the local cache: another call fetches again.
	before := client.Stats().Fetches
	if _, err := client.OpenGroup("/data/f000"); err != nil {
		t.Fatal(err)
	}
	if got := client.Stats().Fetches; got != before+1 {
		t.Errorf("Fetches = %d after second OpenGroup, want %d", got, before+1)
	}
	// ... while plain Open is a cache hit.
	hitsBefore := client.Stats().Hits
	if _, err := client.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	if got := client.Stats().Hits; got != hitsBefore+1 {
		t.Errorf("Hits = %d after Open of grouped file, want %d", got, hitsBefore+1)
	}
}

func groupPaths(files []GroupFile) []string {
	out := make([]string, len(files))
	for i, f := range files {
		out[i] = f.Path
	}
	return out
}

// TestClusterNoteAccessRelay: externally noted accesses ride the next
// fetch's piggyback and reach the server's metadata, so a relaying node
// gives the owner the same learning stream a direct client would.
func TestClusterNoteAccessRelay(t *testing.T) {
	store := seededStore(t, 6)
	_, addr := startServer(t, store, ServerConfig{GroupSize: 3, SuccessorCapacity: 2})
	relay, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	// Relay a history this client never opened itself: f002 -> f003,
	// several times, each followed by a fetch that carries it.
	for i := 0; i < 6; i++ {
		relay.NoteAccess("/data/f002", "/data/f003")
		if _, err := relay.OpenGroup("/data/f003"); err != nil {
			t.Fatal(err)
		}
	}

	group, err := relay.OpenGroup("/data/f002")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range group {
		if f.Path == "/data/f003" {
			found = true
		}
	}
	if !found {
		t.Errorf("relayed transition f002->f003 not learned; group = %v", groupPaths(group))
	}
}
