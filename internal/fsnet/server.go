package fsnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"aggcache/internal/core"
	"aggcache/internal/obs"
	"aggcache/internal/obs/otrace"
	"aggcache/internal/singleflight"
	"aggcache/internal/trace"
)

// maxServerPipeline bounds the request-handler goroutines in flight per
// pipelined connection, so one peer flooding requests cannot exhaust the
// scheduler before backpressure reaches its socket.
const maxServerPipeline = 64

// ServerConfig parameterizes a file server.
type ServerConfig struct {
	// GroupSize is the best-effort retrieval group size g (default 5).
	GroupSize int
	// CacheCapacity is the server's memory cache in whole files
	// (default 256). The cache is an aggregating cache: when a demanded
	// file misses, the whole group is staged from the store.
	CacheCapacity int
	// SuccessorCapacity bounds the per-file successor lists (default 3).
	SuccessorCapacity int
	// IdleTimeout closes connections that send no request for this
	// long. Zero disables the timeout.
	IdleTimeout time.Duration
	// WriteTimeout bounds each reply write so a stalled reader cannot
	// wedge its handler (the write deadline is re-armed per reply
	// batch). Zero disables the bound.
	WriteTimeout time.Duration
	// MaxConns caps concurrently served connections. Excess connections
	// are rejected gracefully: the server sends msgError with CodeBusy
	// and closes. Zero means unlimited.
	MaxConns int
	// MaxProtocol caps the protocol version the server negotiates. Zero
	// allows the latest. Setting 1 makes the server answer the version
	// handshake exactly like a pre-handshake server ("unknown message
	// type", then close) — every client is forced onto the lock-step
	// protocol, which doubles as the serialized benchmark baseline.
	MaxProtocol int
	// Router, when set, is consulted before any open is served from the
	// local cache and store. It lets an embedding tier (internal/cluster)
	// place a path's group on another server: when RouteOpen reports the
	// request handled, its files become the reply verbatim and the local
	// metadata, cache, and store are left untouched. When it reports the
	// request unhandled the server serves it locally as usual — which is
	// also the cluster tier's degraded path when the owning peer is down.
	Router OpenRouter
	// Logger receives connection-level errors; nil discards them.
	Logger *log.Logger
	// Obs, when set, registers the server's counters, per-phase open
	// latency histograms, and an open-connection gauge with the given
	// registry, and routes slow-request events to its event log. Nil
	// keeps the serving path free of clock reads and histogram updates;
	// ServerStats works either way, fed from the same counters.
	Obs *obs.Registry
	// SlowRequest, when positive and Obs is set, records a structured
	// slow_request event for every open that takes at least this long.
	SlowRequest time.Duration
	// Trace, when set, records request spans into the tracer's ring:
	// inbound msgTraceCtx piggybacks make this hop a child span of the
	// sender's, opens arriving without a context are head-sampled at the
	// tracer's own rate, and any open crossing SlowRequest is
	// tail-captured even when unsampled. Nil (the default) drops inbound
	// trace frames and keeps the serving path span-free.
	Trace *otrace.Tracer
	// Views, when set, wires membership-view dissemination into the
	// serving path (internal/gossip): version-3 reply batches piggyback
	// the local epoch as a msgViewHint, inbound hints feed
	// Views.NoteViewEpoch, and msgViewPull/msgViewPush are served.
	// Nil answers view frames with CodeBadRequest and keeps the reply
	// stream byte-identical to a pre-gossip server.
	Views ViewSource
}

// OpenRouter routes open requests whose group is placed on another
// server. Implementations must be safe for concurrent use; RouteOpen is
// called outside every server lock and may block on network I/O.
type OpenRouter interface {
	// RouteOpen resolves path into its group — demanded file first — or
	// reports handled=false to have the server stage the group from its
	// own store. accessed is the client's piggybacked access history,
	// relayed so the remote owner's metadata stays as complete as the
	// local server's would (§3). A handled error is returned to the
	// client: ErrNotFound maps to CodeNotFound, anything else to
	// CodeInternal.
	RouteOpen(path string, accessed []string) (files []GroupFile, handled bool, err error)
}

// TracedRouter is an optional extension of OpenRouter: a router that
// also accepts the request's trace context, so a forwarded open's
// downstream RPC becomes a child span of this server's. The server
// type-asserts once at construction; plain OpenRouter implementations
// keep working unchanged (the context is simply not propagated).
type TracedRouter interface {
	OpenRouter
	// RouteOpenTraced is RouteOpen with the caller's trace context. The
	// zero Ctx means the request is untraced.
	RouteOpenTraced(path string, accessed []string, tctx otrace.Ctx) (files []GroupFile, handled bool, err error)
}

// maxProto normalizes MaxProtocol to a usable version number.
func (cfg ServerConfig) maxProto() int {
	if cfg.MaxProtocol <= 0 || cfg.MaxProtocol > protocolLatest {
		return protocolLatest
	}
	return cfg.MaxProtocol
}

// ServerStats is a snapshot of server activity.
type ServerStats struct {
	// Requests counts open requests served (including errors).
	Requests uint64
	// Errors counts error replies plus protocol violations (malformed
	// or truncated frames, unknown message types) that terminated a
	// connection.
	Errors uint64
	// FilesSent counts files transferred in group replies.
	FilesSent uint64
	// Rejected counts connections turned away at the MaxConns limit.
	Rejected uint64
	// Panics counts handler panics recovered and converted to msgError.
	Panics uint64
	// Disconnects counts connections terminated abnormally by I/O
	// failures (including reply writes cut off by WriteTimeout).
	Disconnects uint64
	// CoalescedStages counts open requests that shared another request's
	// in-flight store staging of the same demanded path instead of
	// reading the store themselves.
	CoalescedStages uint64
	// RemoteOpens counts open requests answered by the configured Router
	// (the cluster peer tier) rather than by the local cache and store.
	RemoteOpens uint64
	// Handoffs counts drain handoff groups installed from departing
	// peers (each learns the group's successor chain and stages its
	// anchor into the cache).
	Handoffs uint64
	// StreamedGroups counts group replies delivered as version-3 member
	// streams (msgMemberChunk frames) rather than one contiguous
	// msgGroup payload.
	StreamedGroups uint64
	// Cache is the server memory cache accounting (hits are requests
	// served without staging from the store).
	Cache core.Stats
}

// Server is the remote file server of Figure 2: it owns the relationship
// metadata, answers opens with groups, and keeps its own aggregating
// memory cache in front of the store.
//
// The serving path is sharded so concurrent requests mostly avoid each
// other (see DESIGN.md §10): counters are atomics, the path interner has
// a read-lock fast path for known paths, store reads happen outside any
// server lock with singleflight coalescing per demanded path, and only
// the successor-table update plus cache admission sit under the short
// aggMu critical section.
type Server struct {
	cfg    ServerConfig
	store  *Store
	logger *log.Logger

	// troute is cfg.Router's TracedRouter form, asserted once at
	// construction; nil when the router does not accept trace contexts.
	troute TracedRouter

	// Hot counters; atomic (obs.Counter wraps one atomic each) so
	// concurrent handlers never contend. With cfg.Obs these are the very
	// series /metrics exposes, so Stats and the exposition cannot drift.
	m serverMetrics

	// ids translates paths to dense FileIDs and back; internally
	// read-write locked with a fast path for already-known paths.
	ids *trace.SyncInterner

	// aggMu guards the aggregating cache: successor learning, residency
	// bookkeeping, and group building. Never held across store or
	// network I/O.
	aggMu sync.Mutex
	agg   *core.AggregatingCache

	// flights coalesces concurrent store stagings of the same group.
	flights singleflight.Group[[]fileData]

	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
	listener net.Listener
	closed   bool
	nextSrc  uint64
	wg       sync.WaitGroup
}

// NewServer builds a server over the given store.
func NewServer(store *Store, cfg ServerConfig) (*Server, error) {
	if store == nil {
		return nil, errors.New("fsnet: store must not be nil")
	}
	if cfg.GroupSize == 0 {
		cfg.GroupSize = 5
	}
	if cfg.GroupSize < 1 || cfg.GroupSize > maxGroup {
		return nil, fmt.Errorf("fsnet: group size %d out of range [1,%d]", cfg.GroupSize, maxGroup)
	}
	if cfg.CacheCapacity == 0 {
		cfg.CacheCapacity = 256
	}
	agg, err := core.New(core.Config{
		Capacity:          cfg.CacheCapacity,
		GroupSize:         cfg.GroupSize,
		SuccessorCapacity: cfg.SuccessorCapacity,
		Obs:               cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		store:  store,
		logger: cfg.Logger,
		agg:    agg,
		ids:    trace.NewSyncInterner(),
		conns:  make(map[net.Conn]struct{}),
		m:      newServerMetrics(cfg.Obs, cfg.SlowRequest),
	}
	if tr, ok := cfg.Router.(TracedRouter); ok {
		s.troute = tr
	}
	if cfg.Obs != nil {
		cfg.Obs.GaugeFunc("fsnet_server_open_conns", "connections currently served", func() float64 {
			s.connMu.Lock()
			defer s.connMu.Unlock()
			return float64(len(s.conns))
		})
	}
	return s, nil
}

// Serve accepts connections on l until Close is called. It blocks; run it
// in a goroutine for concurrent use. Serve returns nil after a graceful
// Close.
func (s *Server) Serve(l net.Listener) error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		return errors.New("fsnet: server already closed")
	}
	s.listener = l
	s.connMu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.connMu.Lock()
			closed := s.closed
			s.connMu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("fsnet: accept: %w", err)
		}
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			_ = conn.Close()
			return nil
		}
		if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
			s.connMu.Unlock()
			s.m.rejected.Add(1)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.rejectConn(conn)
			}()
			continue
		}
		s.conns[conn] = struct{}{}
		s.nextSrc++
		src := s.nextSrc
		s.connMu.Unlock()

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.forget(conn, src)
			s.handleConn(conn, src)
		}()
	}
}

// rejectConn turns an over-limit connection away gracefully: a best-effort
// msgError carrying CodeBusy, then close. The write is deadline-bounded so
// a non-reading peer cannot pin the goroutine. The reply uses version-1
// framing, which both protocol generations decode (a version-2 client sees
// it as the answer to its handshake).
func (s *Server) rejectConn(conn net.Conn) {
	defer conn.Close()
	d := s.cfg.WriteTimeout
	if d <= 0 {
		d = 2 * time.Second
	}
	_ = conn.SetWriteDeadline(time.Now().Add(d))
	w := bufio.NewWriter(conn)
	_ = writeFrame(w, msgError, encodeErrorResponse(errorResponse{
		Code:    CodeBusy,
		Message: "server at connection limit",
	}))
}

// Close stops accepting, closes live connections, and waits for handlers
// to drain.
func (s *Server) Close() error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.connMu.Unlock()

	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

// Stats returns a snapshot of server activity.
//
// Consistency is deliberately relaxed: each field is an atomic load, but
// the snapshot is not taken under one lock, so fields may be mutually
// inconsistent while requests are in flight. The load order makes the
// skew one-sided — the cache accounting and per-path counters are read
// first and Requests last, and every handler increments its request
// counter before anything else — so a snapshot always satisfies
//
//	Requests >= Cache.Hits + Cache.GroupFetches + RemoteOpens
//
// mid-flight, with equality at quiescence for an error-free, opens-only
// workload (writes and not-found errors count a request without a cache
// access). TestConcurrentStatsSnapshot enforces exactly this contract.
func (s *Server) Stats() ServerStats {
	s.aggMu.Lock()
	cacheStats := s.agg.Stats()
	s.aggMu.Unlock()
	st := ServerStats{
		Errors:          s.m.errors.Load(),
		FilesSent:       s.m.sent.Load(),
		Rejected:        s.m.rejected.Load(),
		Panics:          s.m.panics.Load(),
		Disconnects:     s.m.disconnects.Load(),
		CoalescedStages: s.m.coalesced.Load(),
		RemoteOpens:     s.m.remote.Load(),
		Handoffs:        s.m.handoffs.Load(),
		StreamedGroups:  s.m.streamed.Load(),
		Cache:           cacheStats,
	}
	// Last, so its value bounds every per-outcome counter read above.
	st.Requests = s.m.requests.Load()
	return st
}

func (s *Server) forget(conn net.Conn, src uint64) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
	s.aggMu.Lock()
	s.agg.Tracker().ForgetSource(src)
	s.aggMu.Unlock()
	_ = conn.Close()
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// handleConn serves one client until EOF, protocol error, or idle
// timeout. src is the connection's learning context: transitions are only
// recorded within one client's stream, so interleaved clients cannot
// manufacture relationships that never happened on any machine (§2.2).
//
// The first frame selects the protocol: msgHello negotiates a version
// (when the server allows version 2) and hands the connection to the
// pipelined serving loop; anything else is served by the original
// lock-step loop, first frame included, so pre-handshake clients work
// byte-for-byte as before.
func (s *Server) handleConn(conn net.Conn, src uint64) {
	r := bufio.NewReaderSize(conn, connBufSize)
	w := bufio.NewWriterSize(conn, connBufSize)
	// Panic recovery for the negotiation and lock-step paths. The
	// pipelined path recovers per request (and in its read loop) and
	// never panics out of serveV2, so this defer cannot race its reply
	// writer.
	defer func() {
		if p := recover(); p != nil {
			s.m.panics.Add(1)
			s.logf("fsnet: %s: recovered handler panic: %v", conn.RemoteAddr(), p)
			s.armWrite(conn)
			_ = s.replyV1(w, nil, errorResponse{Code: CodeInternal, Message: "internal server error"})
		}
	}()

	typ, payload, ok := s.readRequestV1(conn, r)
	if !ok {
		return
	}
	if typ == msgHello && s.cfg.maxProto() >= protocolV2 {
		offered, err := decodeHello(payload)
		putFrameBuf(payload)
		if err != nil {
			s.armWrite(conn)
			_ = s.replyV1(w, nil, errorResponse{Code: CodeBadRequest, Message: err.Error()})
			return
		}
		ver := offered
		if ver > s.cfg.maxProto() {
			ver = s.cfg.maxProto()
		}
		s.armWrite(conn)
		if err := writeHello(w, msgHelloOK, ver); err != nil {
			s.disconnect(conn, err)
			return
		}
		if ver >= protocolV2 {
			s.serveV2(conn, r, w, src, ver)
			return
		}
		s.serveV1(conn, r, w, src, 0, nil, false)
		return
	}
	// A msgHello reaching serveV1 (MaxProtocol 1) hits the unknown-type
	// branch — the exact answer a pre-handshake server gives, which is
	// what tells the client to downgrade.
	s.serveV1(conn, r, w, src, typ, payload, true)
}

// readRequestV1 arms the idle deadline and reads one version-1 frame,
// classifying read failures: clean departures (EOF, closed, idle timeout)
// are silent, anything else counts as a protocol error.
func (s *Server) readRequestV1(conn net.Conn, r *bufio.Reader) (uint8, []byte, bool) {
	if s.cfg.IdleTimeout > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
			return 0, nil, false
		}
	}
	typ, payload, err := readFrame(r)
	if err != nil {
		if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, os.ErrDeadlineExceeded) {
			s.m.errors.Add(1)
			s.logf("fsnet: %s: read: %v", conn.RemoteAddr(), err)
		}
		return 0, nil, false
	}
	return typ, payload, true
}

// serveV1 is the original lock-step loop: one request, one reply, in
// order. first (when haveFirst) is a frame handleConn already read.
func (s *Server) serveV1(conn net.Conn, r *bufio.Reader, w *bufio.Writer, src uint64, firstTyp uint8, firstPayload []byte, haveFirst bool) {
	for {
		var typ uint8
		var payload []byte
		if haveFirst {
			typ, payload = firstTyp, firstPayload
			haveFirst = false
		} else {
			var ok bool
			typ, payload, ok = s.readRequestV1(conn, r)
			if !ok {
				return
			}
		}
		switch typ {
		case msgOpen:
			req, err := decodeOpenRequest(payload)
			putFrameBuf(payload)
			if err != nil {
				s.armWrite(conn)
				_ = s.replyV1(w, nil, errorResponse{Code: CodeBadRequest, Message: err.Error()})
				return
			}
			// Lock-step (v1) peers predate trace frames, so the open is
			// untraced unless the server's own sampler admits it.
			group, errResp := s.open(req, src, s.cfg.Trace.Root())
			s.armWrite(conn)
			if err := s.replyV1(w, group, errResp); err != nil {
				s.disconnect(conn, err)
				return
			}
		case msgWrite:
			req, err := decodeWriteRequest(payload)
			putFrameBuf(payload)
			if err != nil {
				s.armWrite(conn)
				_ = s.replyV1(w, nil, errorResponse{Code: CodeBadRequest, Message: err.Error()})
				return
			}
			errResp := s.write(req)
			s.armWrite(conn)
			var sendErr error
			if errResp.Code != 0 {
				sendErr = s.replyV1(w, nil, errResp)
			} else {
				sendErr = writeFrame(w, msgWriteOK, nil)
			}
			if sendErr != nil {
				s.disconnect(conn, sendErr)
				return
			}
		case msgHandoff:
			req, err := decodeHandoffRequest(payload)
			putFrameBuf(payload)
			if err != nil {
				s.armWrite(conn)
				_ = s.replyV1(w, nil, errorResponse{Code: CodeBadRequest, Message: err.Error()})
				return
			}
			s.handoff(req)
			s.armWrite(conn)
			if err := writeFrame(w, msgHandoffOK, nil); err != nil {
				s.disconnect(conn, err)
				return
			}
		default:
			// The frame itself parsed, so the stream is intact; still,
			// an unknown type means an incompatible peer. Reply with a
			// typed error, then depart.
			putFrameBuf(payload)
			s.armWrite(conn)
			_ = s.replyV1(w, nil, errorResponse{
				Code:    CodeBadRequest,
				Message: fmt.Sprintf("unknown message type %d", typ),
			})
			return
		}
	}
}

// serveV2 is the pipelined loop: plain opens are served inline by the
// read loop (the in-memory fast path never blocks on anything but the
// reply writer's own backpressure, and a goroutine spawn plus two
// scheduler hops per request is measurable at loopback rates), while
// routed opens, writes, and handoffs get a bounded handler goroutine
// each. A dedicated reply writer batches completed replies — out of
// order — onto the wire with one flush per batch. A malformed request
// payload fails only its own request; the framed stream stays intact,
// so the connection keeps serving.
func (s *Server) serveV2(conn net.Conn, r *bufio.Reader, w *bufio.Writer, src uint64, ver int) {
	rw := newReplyWriter(s, conn, w, ver)
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxServerPipeline)
	func() {
		// A panic in the read loop itself (as opposed to in a handler,
		// which recovers per request) must not skip the drain below: the
		// reply writer owns the write side and a stray v1-framed reply
		// would corrupt it.
		defer func() {
			if p := recover(); p != nil {
				s.m.panics.Add(1)
				s.logf("fsnet: %s: recovered read-loop panic: %v", conn.RemoteAddr(), p)
			}
		}()
		// Pending inbound trace context: the peer's writer emits each
		// msgTraceCtx immediately before the request frame it annotates,
		// so a single pending pair (cleared at the next request) suffices.
		var pendID uint64
		var pendCtx otrace.Ctx
		for {
			if s.cfg.IdleTimeout > 0 {
				if err := conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
					return
				}
			}
			typ, id, payload, err := readFrameID(r)
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, os.ErrDeadlineExceeded) {
					s.m.errors.Add(1)
					s.logf("fsnet: %s: read: %v", conn.RemoteAddr(), err)
				}
				return
			}
			if typ == msgViewHint {
				// Unsolicited epoch announcement piggybacked ahead of a
				// client's request batch. Advisory by design: malformed or
				// unconfigured hints are dropped, never answered, so a
				// plain v3 client works unchanged against a gossip-enabled
				// server and vice versa.
				if vs := s.cfg.Views; vs != nil {
					if epoch, sender, derr := decodeViewMsg(payload); derr == nil {
						vs.NoteViewEpoch(sender, epoch)
					}
				}
				putFrameBuf(payload)
				continue
			}
			if typ == msgTraceCtx {
				// Trace-context piggyback for the next request frame.
				// Advisory like view hints: undecodable contexts (or any
				// arriving at an untraced server) are dropped, never
				// answered.
				if s.cfg.Trace != nil {
					if tid, wctx, derr := decodeTraceCtx(payload); derr == nil {
						pendID, pendCtx = tid, wctx
					}
				}
				putFrameBuf(payload)
				continue
			}
			var tctx otrace.Ctx
			if typ == msgOpen {
				if pendCtx.Sampled && pendID == id {
					// Continue the sender's trace as a child span.
					tctx = s.cfg.Trace.Child(pendCtx)
				} else {
					// No inbound context: this server is the trace's entry
					// point; its own head sampler decides. Nil-safe and
					// branch-only when tracing is unwired.
					tctx = s.cfg.Trace.Root()
				}
				pendCtx = otrace.Ctx{}
			}
			if typ == msgOpen && s.cfg.Router == nil {
				s.serveRequestV2(rw, src, typ, id, payload, tctx)
				continue
			}
			sem <- struct{}{}
			wg.Add(1)
			go func(typ uint8, id uint64, payload []byte, tctx otrace.Ctx) {
				defer wg.Done()
				defer func() { <-sem }()
				s.serveRequestV2(rw, src, typ, id, payload, tctx)
			}(typ, id, payload, tctx)
		}
	}()
	wg.Wait()
	rw.drainAndStop()
}

// serveRequestV2 handles one pipelined request. A panic is recovered
// here, converted into a CodeInternal reply for this request only, and
// the connection keeps serving.
func (s *Server) serveRequestV2(rw *replyWriter, src uint64, typ uint8, id uint64, payload []byte, tctx otrace.Ctx) {
	defer func() {
		if p := recover(); p != nil {
			s.m.panics.Add(1)
			s.logf("fsnet: recovered handler panic: %v", p)
			rw.sendError(id, errorResponse{Code: CodeInternal, Message: "internal server error"})
		}
	}()
	switch typ {
	case msgOpen:
		var files []fileData
		var errResp errorResponse
		if s.cfg.Router == nil {
			// Fast path: the demanded and piggybacked paths are interned
			// straight out of the pooled frame buffer — no path strings,
			// no Accessed slice — and the group is built in pooled
			// scratch.
			var err error
			files, errResp, err = s.openView(payload, src, tctx)
			putFrameBuf(payload)
			if err != nil {
				rw.sendError(id, errorResponse{Code: CodeBadRequest, Message: err.Error()})
				return
			}
		} else {
			// The router path materializes the request (its interface
			// carries strings across the cluster tier).
			req, err := decodeOpenRequest(payload)
			putFrameBuf(payload)
			if err != nil {
				rw.sendError(id, errorResponse{Code: CodeBadRequest, Message: err.Error()})
				return
			}
			files, errResp = s.open(req, src, tctx)
		}
		if errResp.Code != 0 {
			rw.sendError(id, errResp)
			return
		}
		if rw.ver >= protocolV3 {
			s.m.streamed.Add(1)
			rw.sendGroup(id, files)
			return
		}
		rw.send(id, msgGroup, appendGroupResponse(getEncodeBuf(), files), true)
	case msgWrite:
		req, err := decodeWriteRequest(payload)
		putFrameBuf(payload)
		if err != nil {
			rw.sendError(id, errorResponse{Code: CodeBadRequest, Message: err.Error()})
			return
		}
		if errResp := s.write(req); errResp.Code != 0 {
			rw.sendError(id, errResp)
			return
		}
		rw.send(id, msgWriteOK, nil, false)
	case msgHandoff:
		req, err := decodeHandoffRequest(payload)
		putFrameBuf(payload)
		if err != nil {
			rw.sendError(id, errorResponse{Code: CodeBadRequest, Message: err.Error()})
			return
		}
		s.handoff(req)
		rw.send(id, msgHandoffOK, nil, false)
	case msgViewPull:
		// Anti-entropy exchange: answer with our full view when we are at
		// least as new as the puller, otherwise just our epoch. Equal
		// epochs still ship the members: two operators racing the same
		// epoch mint produce divergent same-epoch views, and the puller
		// resolves the tie by view-content hash (internal/cluster) — which
		// it can only do if it sees our members. Either way the puller's
		// own epoch is noted, so if *it* is the newer side the view source
		// pulls back symmetrically. View frames are control-plane traffic
		// and count no request, like the handshake.
		epoch, sender, err := decodeViewMsg(payload)
		putFrameBuf(payload)
		if err != nil {
			rw.sendError(id, errorResponse{Code: CodeBadRequest, Message: err.Error()})
			return
		}
		vs := s.cfg.Views
		if vs == nil {
			rw.sendError(id, errorResponse{Code: CodeBadRequest, Message: "no membership view"})
			return
		}
		vs.NoteViewEpoch(sender, epoch)
		ourEpoch, members := vs.ViewSnapshot()
		if ourEpoch >= epoch {
			rw.send(id, msgViewPush, appendViewPush(getEncodeBuf(), ourEpoch, vs.Self(), members), true)
			return
		}
		rw.send(id, msgViewHint, appendViewMsg(getEncodeBuf(), ourEpoch, vs.Self()), true)
	case msgViewPush:
		epoch, _, members, err := decodeViewPush(payload)
		putFrameBuf(payload)
		if err != nil {
			rw.sendError(id, errorResponse{Code: CodeBadRequest, Message: err.Error()})
			return
		}
		vs := s.cfg.Views
		if vs == nil {
			rw.sendError(id, errorResponse{Code: CodeBadRequest, Message: "no membership view"})
			return
		}
		if _, aerr := vs.ApplyView(epoch, members); aerr != nil {
			// A stale push is applied=false with nil error and still acked
			// below — the pusher learns our (newer) epoch from the ack.
			// Only an invalid view is a request error.
			rw.sendError(id, errorResponse{Code: CodeBadRequest, Message: aerr.Error()})
			return
		}
		rw.send(id, msgViewHint, appendViewMsg(getEncodeBuf(), vs.Epoch(), vs.Self()), true)
	default:
		putFrameBuf(payload)
		rw.sendError(id, errorResponse{
			Code:    CodeBadRequest,
			Message: fmt.Sprintf("unknown message type %d", typ),
		})
	}
}

// armWrite starts the per-reply write deadline, so a peer that stops
// reading cannot wedge this handler once kernel buffers fill.
func (s *Server) armWrite(conn net.Conn) {
	if s.cfg.WriteTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
}

// disconnect records an abnormal connection termination caused by a
// failed reply write (stalled reader, reset, ...).
func (s *Server) disconnect(conn net.Conn, err error) {
	s.m.disconnects.Add(1)
	s.logf("fsnet: %s: write: %v", conn.RemoteAddr(), err)
}

// replyV1 writes one lock-step reply, counting error replies. The
// payload is encoded into a pooled buffer; the wire bytes are identical
// to the historical allocate-per-reply encoding.
func (s *Server) replyV1(w *bufio.Writer, group []fileData, errResp errorResponse) error {
	var b []byte
	var typ uint8
	if errResp.Code != 0 {
		s.m.errors.Add(1)
		typ, b = msgError, appendErrorResponse(getEncodeBuf(), errResp)
	} else {
		typ, b = msgGroup, appendGroupResponse(getEncodeBuf(), group)
	}
	err := writeFrame(w, typ, b)
	putFrameBuf(b)
	return err
}

// write stores a whole-file update. Writes are write-through to the
// store, so later group replies pick the new contents up automatically
// (the server cache tracks identities, not bytes). Consistency across
// clients is last-writer-wins; like the paper's model, the system is
// read-mostly and provides no cross-client invalidation.
func (s *Server) write(req writeRequest) errorResponse {
	s.m.requests.Add(1)
	if err := s.store.Put(req.Path, req.Data); err != nil {
		return errorResponse{Code: CodeBadRequest, Message: err.Error()}
	}
	return errorResponse{}
}

// handoff installs one drained group from a departing peer: the anchor
// and its members are learned as a successor chain under a dedicated
// source context (so the transfer can never interleave with a live
// client stream's transitions), and the anchor is staged into the cache
// — the receiver serves the moved paths warm from its first open.
//
// The chain is first-order: anchor→m1→m2→…, which the group builder
// re-expands transitively, so a later BuildGroup(anchor) reproduces the
// departed owner's group shape up to the configured group size.
//
// Accounting keeps the documented Stats contract: the handoff counts
// one request, and the Serve below counts exactly one cache hit or
// group fetch, so Requests >= Hits + GroupFetches + RemoteOpens holds
// with equality at quiescence exactly as for opens.
func (s *Server) handoff(req handoffRequest) {
	s.m.requests.Add(1)
	anchorID := s.ids.Intern(req.Anchor)
	memberIDs := make([]trace.FileID, 0, len(req.Members))
	for _, p := range req.Members {
		memberIDs = append(memberIDs, s.ids.Intern(p))
	}
	s.connMu.Lock()
	s.nextSrc++
	src := s.nextSrc
	s.connMu.Unlock()

	s.aggMu.Lock()
	s.agg.LearnFrom(src, anchorID)
	for _, mid := range memberIDs {
		s.agg.LearnFrom(src, mid)
	}
	s.agg.Serve(anchorID)
	// The transfer source is one-shot; drop its stream cursor so the id
	// space stays bounded by live connections.
	s.agg.Tracker().ForgetSource(src)
	s.aggMu.Unlock()
	s.m.handoffs.Add(1)
}

// ExportGroups snapshots the groups this server would serve right now
// for every interned path accepted by owned — each as its anchor plus
// learned members — skipping single-file groups (nothing learned to
// move). The cluster tier's Drain feeds each to the path's next owner
// via Client.Handoff. Pass nil to export every group.
func (s *Server) ExportGroups(owned func(path string) bool) []HandoffGroup {
	n := s.ids.Len()
	var out []HandoffGroup
	for i := 0; i < n; i++ {
		id := trace.FileID(i)
		path := s.ids.Path(id)
		if path == "" || (owned != nil && !owned(path)) {
			continue
		}
		s.aggMu.Lock()
		g := s.agg.BuildGroup(id)
		s.aggMu.Unlock()
		if len(g) <= 1 {
			continue
		}
		members := make([]string, 0, len(g)-1)
		for _, gid := range g[1:] {
			if p := s.ids.Path(gid); p != "" {
				members = append(members, p)
			}
		}
		if len(members) == 0 {
			continue
		}
		out = append(out, HandoffGroup{Anchor: path, Members: members})
	}
	return out
}

// openScratch carries the per-request working set of the open hot path:
// interned access IDs, the built group, and its paths. Pooled so a
// steady-state open allocates none of it.
type openScratch struct {
	views [][]byte // piggybacked path views into the frame buffer
	ids   []trace.FileID
	group []trace.FileID
	paths []string
}

var openScratchPool = sync.Pool{New: func() interface{} { return new(openScratch) }}

// open runs one request through the metadata and the server cache and
// assembles the group reply. The store is only touched outside aggMu:
// existence is checked lock-free up front, and the group's contents are
// staged after the critical section, coalesced with any concurrent
// staging of the same demanded path.
func (s *Server) open(req openRequest, src uint64, tctx otrace.Ctx) ([]fileData, errorResponse) {
	s.m.requests.Add(1)
	// The clock is only read when a registry (or slow-request threshold,
	// or a sampled trace) demands it, so uninstrumented servers keep a
	// syscall-free path.
	var start time.Time
	timed := s.m.timed() || tctx.Sampled
	if timed {
		start = time.Now()
	}
	if s.cfg.Router != nil {
		if files, errResp, handled := s.routeOpen(req, tctx); handled {
			if timed {
				s.observeServed(tctx, "forward", req.Path, start)
			}
			return files, errResp
		}
	}
	if !s.store.Contains(req.Path) {
		return nil, errorResponse{Code: CodeNotFound, Message: req.Path}
	}

	// Path→ID translation takes the interner's lock-free fast path for
	// already-known paths and never needs aggMu.
	sc := openScratchPool.Get().(*openScratch)
	sc.ids = sc.ids[:0]
	for _, p := range req.Accessed {
		if p == "" || len(p) > maxPath {
			continue
		}
		sc.ids = append(sc.ids, s.ids.Intern(p))
	}
	id := s.ids.Intern(req.Path)
	files, errResp := s.serveOpen(id, req.Path, src, sc, timed, start, tctx)
	openScratchPool.Put(sc)
	return files, errResp
}

// openView is the pooled fast path of the pipelined open: the demanded
// and piggybacked paths are interned as byte views straight out of the
// frame buffer — no request struct, no path strings, no Accessed slice —
// and the group is built in pooled scratch. A non-nil error reports a
// malformed payload (the caller answers CodeBadRequest without counting
// a request, exactly like the decode-then-open path).
func (s *Server) openView(payload []byte, src uint64, tctx otrace.Ctx) ([]fileData, errorResponse, error) {
	d := decoder{buf: payload}
	pathView, err := d.view(maxPath)
	if err != nil {
		return nil, errorResponse{}, err
	}
	if len(pathView) == 0 {
		return nil, errorResponse{}, errors.New("fsnet: empty path")
	}
	n, err := d.uvarint()
	if err != nil {
		return nil, errorResponse{}, err
	}
	if n > maxStatPaths {
		return nil, errorResponse{}, fmt.Errorf("fsnet: %d piggybacked paths exceed limit %d", n, maxStatPaths)
	}
	sc := openScratchPool.Get().(*openScratch)
	sc.views = sc.views[:0]
	for i := uint64(0); i < n; i++ {
		pv, err := d.view(maxPath)
		if err != nil {
			openScratchPool.Put(sc)
			return nil, errorResponse{}, err
		}
		if len(pv) == 0 {
			continue
		}
		sc.views = append(sc.views, pv)
	}
	if err := d.done(); err != nil {
		openScratchPool.Put(sc)
		return nil, errorResponse{}, err
	}

	s.m.requests.Add(1)
	var start time.Time
	timed := s.m.timed() || tctx.Sampled
	if timed {
		start = time.Now()
	}
	// Existence check before any interning, so nonexistent demanded
	// paths never grow the ID space (the lock-step path behaves the
	// same way).
	if !s.store.containsBytes(pathView) {
		openScratchPool.Put(sc)
		return nil, errorResponse{Code: CodeNotFound, Message: string(pathView)}, nil
	}
	sc.ids = sc.ids[:0]
	for _, pv := range sc.views {
		sc.ids = append(sc.ids, s.ids.InternBytes(pv))
	}
	id := s.ids.InternBytes(pathView)
	path := s.ids.Path(id) // the interned string: no per-request copy
	files, errResp := s.serveOpen(id, path, src, sc, timed, start, tctx)
	openScratchPool.Put(sc)
	return files, errResp, nil
}

// serveOpen is the shared tail of the open paths: learn the piggybacked
// transitions, stage the group through the aggregating cache, and read
// the members' contents. sc.ids holds the interned access history.
func (s *Server) serveOpen(id trace.FileID, path string, src uint64, sc *openScratch, timed bool, start time.Time, tctx otrace.Ctx) ([]fileData, errorResponse) {
	s.aggMu.Lock()
	// Piggybacked history first (oldest..newest), then the demanded
	// open, preserving the client's true access order.
	for _, aid := range sc.ids {
		s.agg.LearnFrom(src, aid)
	}
	s.agg.LearnFrom(src, id)
	// Stage the group into the server memory cache; hit-or-miss selects
	// the latency phase below.
	hit := s.agg.Serve(id)
	sc.group = s.agg.AppendBuildGroup(sc.group[:0], id)
	s.aggMu.Unlock()

	sc.paths = sc.paths[:0]
	for _, gid := range sc.group {
		sc.paths = append(sc.paths, s.ids.Path(gid))
	}

	files, ok := s.stageGroup(path, sc.paths)
	if !ok {
		// The file vanished between the existence check and the staged
		// read; rare, and the learning above recorded a genuine access.
		return nil, errorResponse{Code: CodeNotFound, Message: path}
	}
	s.m.sent.Add(uint64(len(files)))
	if timed {
		phase := "stage"
		if hit {
			phase = "hit"
		}
		s.observeServed(tctx, phase, path, start)
	}
	return files, errorResponse{}
}

// observeServed finishes one timed open: the phase span for a sampled
// trace (or a tail capture when an unsampled open crossed the slow
// threshold), then the latency histogram with the trace ID attached as
// the phase bucket's exemplar. Rendering the hex trace ID allocates, so
// untraced opens pass the empty string and stay on the plain path.
func (s *Server) observeServed(tctx otrace.Ctx, phase, path string, start time.Time) {
	d := time.Since(start)
	if tctx.Sampled {
		s.cfg.Trace.Record(tctx, phase, path, start, d)
		s.m.observeOpen(phase, path, d, tctx.TraceID())
		return
	}
	if s.cfg.Trace != nil && s.cfg.SlowRequest > 0 && d >= s.cfg.SlowRequest {
		ttx := s.cfg.Trace.Tail(phase, path, start, d)
		s.m.observeOpen(phase, path, d, ttx.TraceID())
		return
	}
	s.m.observeOpen(phase, path, d, "")
}

// routeOpen hands one open to the configured Router. handled=false means
// the caller serves the request locally (the router declined: the path is
// locally owned, or its owner is down and the open degrades to a local
// fetch).
func (s *Server) routeOpen(req openRequest, tctx otrace.Ctx) ([]fileData, errorResponse, bool) {
	var (
		files   []GroupFile
		handled bool
		err     error
	)
	if s.troute != nil {
		files, handled, err = s.troute.RouteOpenTraced(req.Path, req.Accessed, tctx)
	} else {
		files, handled, err = s.cfg.Router.RouteOpen(req.Path, req.Accessed)
	}
	if !handled {
		return nil, errorResponse{}, false
	}
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return nil, errorResponse{Code: CodeNotFound, Message: req.Path}, true
		}
		return nil, errorResponse{Code: CodeInternal, Message: err.Error()}, true
	}
	if len(files) == 0 || files[0].Path != req.Path {
		return nil, errorResponse{Code: CodeInternal, Message: "router returned malformed group"}, true
	}
	if len(files) > maxGroup {
		files = files[:maxGroup]
	}
	out := make([]fileData, len(files))
	for i, f := range files {
		out[i] = fileData{Path: f.Path, Data: f.Data}
	}
	s.m.remote.Add(1)
	s.m.sent.Add(uint64(len(out)))
	return out, errorResponse{}, true
}

// stageGroup reads the demanded file plus the group members from the
// store, coalescing with any concurrent staging of the same demanded
// path: followers wait for the leader's read and share its (read-only)
// result instead of hitting the store themselves.
//
// The contents are zero-copy references into the store (GetRef): Put
// replaces a path's slice wholesale, so a staged ref can never be
// mutated underneath the reply writer, and the result slice itself is
// shared across coalesced followers — it must never be pooled or
// written to.
func (s *Server) stageGroup(path string, paths []string) ([]fileData, bool) {
	files, ok, coalesced := s.flights.Do(path, func() ([]fileData, bool) {
		data, ok := s.store.GetRef(path)
		if !ok {
			return nil, false
		}
		files := make([]fileData, 0, len(paths))
		files = append(files, fileData{Path: path, Data: data})
		for _, p := range paths[1:] {
			if d, ok := s.store.GetRef(p); ok {
				files = append(files, fileData{Path: p, Data: d})
			}
		}
		return files, true
	})
	if coalesced {
		s.m.coalesced.Add(1)
	}
	return files, ok
}

// replyWriter serializes and batches the replies of one pipelined
// connection: handler goroutines enqueue completed replies, and a single
// writer goroutine drains whatever has accumulated with one flush — so k
// ready replies cost one syscall, and a slow store read never blocks the
// replies queued behind it.
//
// At protocol version 3 the writer is scatter-gather: group replies are
// member streams whose frame headers and path metadata live in one
// pooled arena while the file contents ride as store references, and the
// whole batch goes to the socket in a single net.Buffers writev — the
// reply bytes are never assembled into a contiguous buffer.
type replyWriter struct {
	s    *Server
	conn net.Conn
	w    *bufio.Writer
	ver  int

	mu      sync.Mutex
	queue   []v2Reply
	free    []v2Reply // recycled batch storage
	dead    bool
	stop    bool
	wake    chan struct{}
	stopped chan struct{}

	bufs net.Buffers // scatter-gather scratch, reused per batch

	// View-hint piggyback state, touched only by the loop goroutine: the
	// epoch last announced on this connection, so a stable view costs one
	// frame per connection rather than one per batch. Only the version-3
	// batch path hints; v2 reply bytes stay identical to every earlier
	// server.
	sentAny   bool
	sentEpoch uint64
}

type v2Reply struct {
	id      uint64
	typ     uint8
	payload []byte
	// pooled marks a payload encoded into a frame-pool buffer; the
	// writer hands it back once the bytes are on the wire (or the write
	// side is dead).
	pooled bool
	// files, when non-nil, is a streamed version-3 group reply (typ and
	// payload are unused): one msgMemberChunk per file plus a closing
	// msgGroupEnd. The slice is the singleflight-shared staging result —
	// read-only here.
	files []fileData
}

func newReplyWriter(s *Server, conn net.Conn, w *bufio.Writer, ver int) *replyWriter {
	rw := &replyWriter{
		s:       s,
		conn:    conn,
		w:       w,
		ver:     ver,
		wake:    make(chan struct{}, 1),
		stopped: make(chan struct{}),
	}
	go rw.loop()
	return rw
}

// sendError enqueues an error reply, counting it like the lock-step path.
func (rw *replyWriter) sendError(id uint64, errResp errorResponse) {
	rw.s.m.errors.Add(1)
	rw.send(id, msgError, appendErrorResponse(getEncodeBuf(), errResp), true)
}

// send enqueues one reply frame for the writer goroutine.
func (rw *replyWriter) send(id uint64, typ uint8, payload []byte, pooled bool) {
	rw.enqueue(v2Reply{id: id, typ: typ, payload: payload, pooled: pooled})
}

// sendGroup enqueues one streamed (version-3) group reply.
func (rw *replyWriter) sendGroup(id uint64, files []fileData) {
	rw.enqueue(v2Reply{id: id, files: files})
}

func (rw *replyWriter) enqueue(rep v2Reply) {
	rw.mu.Lock()
	if rw.dead {
		rw.mu.Unlock()
		if rep.pooled {
			putFrameBuf(rep.payload)
		}
		return
	}
	rw.queue = append(rw.queue, rep)
	rw.mu.Unlock()
	select {
	case rw.wake <- struct{}{}:
	default:
	}
}

// drainAndStop flushes any remaining replies and waits for the writer
// goroutine to exit. Called after every handler has completed.
func (rw *replyWriter) drainAndStop() {
	rw.mu.Lock()
	rw.stop = true
	rw.mu.Unlock()
	select {
	case rw.wake <- struct{}{}:
	default:
	}
	<-rw.stopped
}

func (rw *replyWriter) loop() {
	defer close(rw.stopped)
	for range rw.wake {
		for {
			rw.mu.Lock()
			batch := rw.queue
			// Hand the previous batch's storage back so steady-state
			// batching reallocates nothing.
			rw.queue = rw.free[:0]
			rw.free = nil
			dead, stopped := rw.dead, rw.stop
			rw.mu.Unlock()
			if dead {
				rw.release(batch)
				return
			}
			if len(batch) == 0 {
				rw.recycle(batch)
				if stopped {
					return
				}
				break
			}
			rw.s.armWrite(rw.conn)
			var err error
			if rw.ver >= protocolV3 {
				err = rw.writeBatchV3(batch)
			} else {
				err = rw.writeBatchV2(batch)
			}
			rw.recycle(batch)
			if err != nil {
				rw.fail(err)
				return
			}
		}
	}
}

// writeBatchV2 is the contiguous-frame path: each reply's payload is
// buffered through the bufio writer and the batch shares one flush. The
// wire bytes are identical to every earlier version-2 server.
func (rw *replyWriter) writeBatchV2(batch []v2Reply) error {
	var err error
	for i := range batch {
		rep := &batch[i]
		if err = putFrameID(rw.w, rep.typ, rep.id, rep.payload); err != nil {
			break
		}
		if rep.pooled {
			putFrameBuf(rep.payload)
			rep.pooled = false
		}
	}
	if err == nil {
		err = rw.w.Flush()
	}
	return err
}

// writeBatchV3 is the scatter-gather path: frame headers and chunk
// metadata accumulate in one pooled arena, file contents are referenced
// in place, and the whole batch leaves in a single net.Buffers write.
// Arena growth may reallocate its backing array, but segments already
// recorded in bufs keep pointing at the old array's (immutable) bytes,
// so earlier frames are never corrupted.
func (rw *replyWriter) writeBatchV3(batch []v2Reply) error {
	arena := getEncodeBuf()
	bufs := rw.bufs[:0]
	// Piggyback the membership epoch ahead of the batch when a view
	// source is wired: one msgViewHint under request ID 0 (request IDs
	// start at 1), re-sent only when the epoch changes. Without Views
	// this is a single nil check — the hit path stays alloc-free.
	if vs := rw.s.cfg.Views; vs != nil {
		if epoch := vs.Epoch(); !rw.sentAny || epoch != rw.sentEpoch {
			scratch := appendViewMsg(getEncodeBuf(), epoch, vs.Self())
			start := len(arena)
			arena = appendFrameID(arena, msgViewHint, 0, scratch)
			bufs = append(bufs, arena[start:])
			putFrameBuf(scratch)
			rw.sentAny, rw.sentEpoch = true, epoch
		}
	}
	for i := range batch {
		rep := &batch[i]
		if rep.files != nil {
			for _, f := range rep.files {
				start := len(arena)
				arena = appendMemberChunkHdr(arena, rep.id, f.Path, len(f.Data))
				bufs = append(bufs, arena[start:], f.Data)
			}
			var cnt [10]byte // uvarint member count
			n := binary.PutUvarint(cnt[:], uint64(len(rep.files)))
			start := len(arena)
			arena = appendFrameID(arena, msgGroupEnd, rep.id, cnt[:n])
			bufs = append(bufs, arena[start:])
			continue
		}
		start := len(arena)
		arena = appendFrameID(arena, rep.typ, rep.id, rep.payload)
		bufs = append(bufs, arena[start:])
		if rep.pooled {
			putFrameBuf(rep.payload)
			rep.pooled = false
		}
	}
	// WriteTo consumes its receiver (and may rewrite elements on partial
	// writes), so give it the scratch directly and re-truncate next
	// batch; the element values are disposable.
	rw.bufs = bufs
	_, err := rw.bufs.WriteTo(rw.conn)
	rw.bufs = bufs[:0]
	putFrameBuf(arena)
	return err
}

// recycle returns any still-pooled payloads and offers the batch storage
// back for the next drain.
func (rw *replyWriter) recycle(batch []v2Reply) {
	for i := range batch {
		if batch[i].pooled {
			putFrameBuf(batch[i].payload)
		}
		batch[i] = v2Reply{}
	}
	rw.mu.Lock()
	if rw.free == nil || cap(batch) > cap(rw.free) {
		rw.free = batch[:0]
	}
	rw.mu.Unlock()
}

// release drops a batch that will never be written, returning its pooled
// payloads.
func (rw *replyWriter) release(batch []v2Reply) {
	for i := range batch {
		if batch[i].pooled {
			putFrameBuf(batch[i].payload)
		}
	}
}

// fail marks the write side dead after an I/O failure and closes the
// connection so the read loop unblocks; counted once as a disconnect.
func (rw *replyWriter) fail(err error) {
	rw.mu.Lock()
	rw.dead = true
	rw.queue = nil
	rw.mu.Unlock()
	rw.s.disconnect(rw.conn, err)
	_ = rw.conn.Close()
}
