package fsnet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"aggcache/internal/core"
	"aggcache/internal/trace"
)

// ServerConfig parameterizes a file server.
type ServerConfig struct {
	// GroupSize is the best-effort retrieval group size g (default 5).
	GroupSize int
	// CacheCapacity is the server's memory cache in whole files
	// (default 256). The cache is an aggregating cache: when a demanded
	// file misses, the whole group is staged from the store.
	CacheCapacity int
	// SuccessorCapacity bounds the per-file successor lists (default 3).
	SuccessorCapacity int
	// IdleTimeout closes connections that send no request for this
	// long. Zero disables the timeout.
	IdleTimeout time.Duration
	// WriteTimeout bounds each reply write so a stalled reader cannot
	// wedge its handler (the write deadline is re-armed per reply).
	// Zero disables the bound.
	WriteTimeout time.Duration
	// MaxConns caps concurrently served connections. Excess connections
	// are rejected gracefully: the server sends msgError with CodeBusy
	// and closes. Zero means unlimited.
	MaxConns int
	// Logger receives connection-level errors; nil discards them.
	Logger *log.Logger
}

// ServerStats is a snapshot of server activity.
type ServerStats struct {
	// Requests counts open requests served (including errors).
	Requests uint64
	// Errors counts error replies plus protocol violations (malformed
	// or truncated frames, unknown message types) that terminated a
	// connection.
	Errors uint64
	// FilesSent counts files transferred in group replies.
	FilesSent uint64
	// Rejected counts connections turned away at the MaxConns limit.
	Rejected uint64
	// Panics counts handler panics recovered and converted to msgError.
	Panics uint64
	// Disconnects counts connections terminated abnormally by I/O
	// failures (including reply writes cut off by WriteTimeout).
	Disconnects uint64
	// Cache is the server memory cache accounting (hits are requests
	// served without staging from the store).
	Cache core.Stats
}

// Server is the remote file server of Figure 2: it owns the relationship
// metadata, answers opens with groups, and keeps its own aggregating
// memory cache in front of the store.
type Server struct {
	cfg    ServerConfig
	store  *Store
	logger *log.Logger

	mu          sync.Mutex // guards agg, ids, stats
	agg         *core.AggregatingCache
	ids         *trace.Interner
	requests    uint64
	errors      uint64
	sent        uint64
	rejected    uint64
	panics      uint64
	disconnects uint64

	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
	listener net.Listener
	closed   bool
	nextSrc  uint64
	wg       sync.WaitGroup
}

// NewServer builds a server over the given store.
func NewServer(store *Store, cfg ServerConfig) (*Server, error) {
	if store == nil {
		return nil, errors.New("fsnet: store must not be nil")
	}
	if cfg.GroupSize == 0 {
		cfg.GroupSize = 5
	}
	if cfg.GroupSize < 1 || cfg.GroupSize > maxGroup {
		return nil, fmt.Errorf("fsnet: group size %d out of range [1,%d]", cfg.GroupSize, maxGroup)
	}
	if cfg.CacheCapacity == 0 {
		cfg.CacheCapacity = 256
	}
	agg, err := core.New(core.Config{
		Capacity:          cfg.CacheCapacity,
		GroupSize:         cfg.GroupSize,
		SuccessorCapacity: cfg.SuccessorCapacity,
	})
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:    cfg,
		store:  store,
		logger: cfg.Logger,
		agg:    agg,
		ids:    trace.NewInterner(),
		conns:  make(map[net.Conn]struct{}),
	}, nil
}

// Serve accepts connections on l until Close is called. It blocks; run it
// in a goroutine for concurrent use. Serve returns nil after a graceful
// Close.
func (s *Server) Serve(l net.Listener) error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		return errors.New("fsnet: server already closed")
	}
	s.listener = l
	s.connMu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.connMu.Lock()
			closed := s.closed
			s.connMu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("fsnet: accept: %w", err)
		}
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			_ = conn.Close()
			return nil
		}
		if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
			s.connMu.Unlock()
			s.mu.Lock()
			s.rejected++
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.rejectConn(conn)
			}()
			continue
		}
		s.conns[conn] = struct{}{}
		s.nextSrc++
		src := s.nextSrc
		s.connMu.Unlock()

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.forget(conn, src)
			s.handleConn(conn, src)
		}()
	}
}

// rejectConn turns an over-limit connection away gracefully: a best-effort
// msgError carrying CodeBusy, then close. The write is deadline-bounded so
// a non-reading peer cannot pin the goroutine.
func (s *Server) rejectConn(conn net.Conn) {
	defer conn.Close()
	d := s.cfg.WriteTimeout
	if d <= 0 {
		d = 2 * time.Second
	}
	_ = conn.SetWriteDeadline(time.Now().Add(d))
	w := bufio.NewWriter(conn)
	_ = writeFrame(w, msgError, encodeErrorResponse(errorResponse{
		Code:    CodeBusy,
		Message: "server at connection limit",
	}))
}

// Close stops accepting, closes live connections, and waits for handlers
// to drain.
func (s *Server) Close() error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.connMu.Unlock()

	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

// Stats returns a snapshot of server activity.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServerStats{
		Requests:    s.requests,
		Errors:      s.errors,
		FilesSent:   s.sent,
		Rejected:    s.rejected,
		Panics:      s.panics,
		Disconnects: s.disconnects,
		Cache:       s.agg.Stats(),
	}
}

func (s *Server) forget(conn net.Conn, src uint64) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
	s.mu.Lock()
	s.agg.Tracker().ForgetSource(src)
	s.mu.Unlock()
	_ = conn.Close()
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// handleConn serves one client until EOF, protocol error, or idle
// timeout. src is the connection's learning context: transitions are only
// recorded within one client's stream, so interleaved clients cannot
// manufacture relationships that never happened on any machine (§2.2).
//
// A panic anywhere in request handling is recovered, counted, and
// converted into a best-effort msgError reply before the connection
// closes — one poisoned request must never take the whole server down.
func (s *Server) handleConn(conn net.Conn, src uint64) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	defer func() {
		if p := recover(); p != nil {
			s.mu.Lock()
			s.panics++
			s.mu.Unlock()
			s.logf("fsnet: %s: recovered handler panic: %v", conn.RemoteAddr(), p)
			s.armWrite(conn)
			_ = s.reply(w, nil, errorResponse{Code: CodeInternal, Message: "internal server error"})
		}
	}()
	for {
		if s.cfg.IdleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
				return
			}
		}
		typ, payload, err := readFrame(r)
		if err != nil {
			// EOF, closed connections and idle timeouts are normal
			// departures; anything else is a protocol violation or I/O
			// failure worth counting.
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, os.ErrDeadlineExceeded) {
				s.mu.Lock()
				s.errors++
				s.mu.Unlock()
				s.logf("fsnet: %s: read: %v", conn.RemoteAddr(), err)
			}
			return
		}
		switch typ {
		case msgOpen:
			req, err := decodeOpenRequest(payload)
			if err != nil {
				s.armWrite(conn)
				_ = s.reply(w, nil, errorResponse{Code: CodeBadRequest, Message: err.Error()})
				return
			}
			group, errResp := s.open(req, src)
			s.armWrite(conn)
			if err := s.reply(w, group, errResp); err != nil {
				s.disconnect(conn, err)
				return
			}
		case msgWrite:
			req, err := decodeWriteRequest(payload)
			if err != nil {
				s.armWrite(conn)
				_ = s.reply(w, nil, errorResponse{Code: CodeBadRequest, Message: err.Error()})
				return
			}
			errResp := s.write(req)
			s.armWrite(conn)
			var sendErr error
			if errResp.Code != 0 {
				sendErr = s.reply(w, nil, errResp)
			} else {
				sendErr = writeFrame(w, msgWriteOK, nil)
			}
			if sendErr != nil {
				s.disconnect(conn, sendErr)
				return
			}
		default:
			// The frame itself parsed, so the stream is intact; still,
			// an unknown type means an incompatible peer. Reply with a
			// typed error, then depart.
			s.armWrite(conn)
			_ = s.reply(w, nil, errorResponse{
				Code:    CodeBadRequest,
				Message: fmt.Sprintf("unknown message type %d", typ),
			})
			return
		}
	}
}

// armWrite starts the per-reply write deadline, so a peer that stops
// reading cannot wedge this handler once kernel buffers fill.
func (s *Server) armWrite(conn net.Conn) {
	if s.cfg.WriteTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
}

// disconnect records an abnormal connection termination caused by a
// failed reply write (stalled reader, reset, ...).
func (s *Server) disconnect(conn net.Conn, err error) {
	s.mu.Lock()
	s.disconnects++
	s.mu.Unlock()
	s.logf("fsnet: %s: write: %v", conn.RemoteAddr(), err)
}

func (s *Server) reply(w *bufio.Writer, group []fileData, errResp errorResponse) error {
	if errResp.Code != 0 {
		s.mu.Lock()
		s.errors++
		s.mu.Unlock()
		return writeFrame(w, msgError, encodeErrorResponse(errResp))
	}
	return writeFrame(w, msgGroup, encodeGroupResponse(groupResponse{Files: group}))
}

// write stores a whole-file update. Writes are write-through to the
// store, so later group replies pick the new contents up automatically
// (the server cache tracks identities, not bytes). Consistency across
// clients is last-writer-wins; like the paper's model, the system is
// read-mostly and provides no cross-client invalidation.
func (s *Server) write(req writeRequest) errorResponse {
	s.mu.Lock()
	s.requests++
	s.mu.Unlock()
	if err := s.store.Put(req.Path, req.Data); err != nil {
		return errorResponse{Code: CodeBadRequest, Message: err.Error()}
	}
	return errorResponse{}
}

// open runs one request through the metadata and the server cache and
// assembles the group reply.
func (s *Server) open(req openRequest, src uint64) ([]fileData, errorResponse) {
	data, ok := s.store.Get(req.Path)
	if !ok {
		s.mu.Lock()
		s.requests++
		s.mu.Unlock()
		return nil, errorResponse{Code: CodeNotFound, Message: req.Path}
	}

	s.mu.Lock()
	s.requests++
	// Piggybacked history first (oldest..newest), then the demanded
	// open, preserving the client's true access order.
	for _, p := range req.Accessed {
		if p == "" || len(p) > maxPath {
			continue
		}
		s.agg.LearnFrom(src, s.ids.Intern(p))
	}
	id := s.ids.Intern(req.Path)
	s.agg.LearnFrom(src, id)
	s.agg.Serve(id) // stage the group into the server memory cache
	groupIDs := s.agg.BuildGroup(id)
	paths := make([]string, 0, len(groupIDs))
	for _, gid := range groupIDs {
		paths = append(paths, s.ids.Path(gid))
	}
	s.mu.Unlock()

	files := make([]fileData, 0, len(paths))
	files = append(files, fileData{Path: req.Path, Data: data})
	for _, p := range paths[1:] {
		if d, ok := s.store.Get(p); ok {
			files = append(files, fileData{Path: p, Data: d})
		}
	}
	s.mu.Lock()
	s.sent += uint64(len(files))
	s.mu.Unlock()
	return files, errorResponse{}
}
