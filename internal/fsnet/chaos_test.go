package fsnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"aggcache/internal/faultnet"
	"aggcache/internal/trace"
	"aggcache/internal/workload"
)

// The chaos suite drives real client/server pairs through
// workload-generated traces while faultnet injects every fault class on
// both sides of the wire. Invariants, per the robustness model in
// DESIGN.md: no panics, every successful open returns exactly the stored
// bytes, client stats stay consistent, and a retry-configured client
// survives a full server restart mid-trace.

// chaosTrace generates a deterministic workload trace and returns the
// per-client open sequences as path slices, plus a store seeded with
// every path.
func chaosTrace(t *testing.T, seed int64, opens int) (map[uint16][]string, *Store) {
	t.Helper()
	tr, err := workload.Generate(workload.Config{
		Seed:            seed,
		Opens:           opens,
		Clients:         3,
		InterleaveChunk: 2,
		Tasks:           12,
		TaskLen:         8,
		SharedFiles:     6,
		ZipfS:           1.3,
		Noise:           0.05,
		NoiseUniverse:   200,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	seqs := make(map[uint16][]string)
	for _, ev := range tr.Events {
		if ev.Op != trace.OpOpen {
			continue
		}
		path := tr.Paths.Path(ev.File)
		seqs[ev.Client] = append(seqs[ev.Client], path)
		if _, ok := store.Get(path); !ok {
			if err := store.Put(path, []byte("contents of "+path)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(seqs) == 0 {
		t.Fatal("workload produced no opens")
	}
	return seqs, store
}

// chaosClientConfig is the shared hardened-client shape: tight deadlines,
// generous retries, fast backoff so the suite stays quick.
func chaosClientConfig(seed int64) ClientConfig {
	return ClientConfig{
		CacheCapacity: 16,
		Timeout:       250 * time.Millisecond,
		MaxRetries:    12,
		Backoff:       Backoff{Base: time.Millisecond, Max: 20 * time.Millisecond, Multiplier: 2, Jitter: 0.2},
		Seed:          seed,
	}
}

// runChaosTrace replays every per-client sequence concurrently through
// fault-wrapped connections and asserts the invariants.
func runChaosTrace(t *testing.T, name string, clientFaults, serverFaults faultnet.Faults) {
	t.Helper()
	seqs, store := chaosTrace(t, 0xC0FFEE, 400)

	srv, err := NewServer(store, ServerConfig{
		GroupSize:     4,
		CacheCapacity: 64,
		IdleTimeout:   500 * time.Millisecond,
		WriteTimeout:  500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rawL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var l net.Listener = rawL
	if serverFaults != (faultnet.Faults{}) {
		l = faultnet.WrapListener(rawL, serverFaults)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve returned: %v", err)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, len(seqs))
	var faultStats []*faultnet.Stats
	var clients []*Client
	var mu sync.Mutex
	i := 0
	for cid, seq := range seqs {
		i++
		cfg := chaosClientConfig(int64(i))
		var stats *faultnet.Stats
		if clientFaults != (faultnet.Faults{}) {
			cf := clientFaults
			cf.Seed = clientFaults.Seed + int64(cid)
			cfg.Dialer, stats = faultnet.Dialer(rawL.Addr().String(), cf)
		} else {
			addr := rawL.Addr().String()
			cfg.Dialer = func() (net.Conn, error) { return net.Dial("tcp", addr) }
		}
		if stats != nil {
			faultStats = append(faultStats, stats)
		}
		conn, err := cfg.Dialer()
		if err != nil {
			t.Fatal(err)
		}
		client, err := NewClient(conn, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		clients = append(clients, client)
		mu.Unlock()
		wg.Add(1)
		go func(cid uint16, seq []string, client *Client) {
			defer wg.Done()
			defer client.Close()
			for n, path := range seq {
				data, err := client.Open(path)
				if err != nil {
					errs <- fmt.Errorf("%s: client %d open %d (%s): %w", name, cid, n, path, err)
					return
				}
				if want := "contents of " + path; string(data) != want {
					errs <- fmt.Errorf("%s: client %d open %s returned wrong bytes %q", name, cid, path, data)
					return
				}
			}
		}(cid, seq, client)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Stats consistency on every client: opens split exactly into hits
	// and fetches, and received files cover the fetches.
	var total ClientStats
	for _, c := range clients {
		st := c.Stats()
		if st.Opens != st.Hits+st.Fetches {
			t.Errorf("%s: inconsistent client stats: %+v", name, st)
		}
		if st.FilesReceived < st.Fetches {
			t.Errorf("%s: FilesReceived %d < Fetches %d", name, st.FilesReceived, st.Fetches)
		}
		total.Retries += st.Retries
		total.Reconnects += st.Reconnects
		total.BrokenConns += st.BrokenConns
	}
	// When faults were configured, the schedule must actually have fired
	// and the clients must actually have recovered through it.
	var injected uint64
	for _, fs := range faultStats {
		injected += fs.Total()
	}
	if fl, ok := l.(*faultnet.Listener); ok {
		injected += fl.Stats().Total()
	}
	if clientFaults != (faultnet.Faults{}) || serverFaults != (faultnet.Faults{}) {
		if injected == 0 {
			t.Errorf("%s: no faults injected; chaos run was vacuous", name)
		}
		t.Logf("%s: injected=%d retries=%d reconnects=%d broken=%d",
			name, injected, total.Retries, total.Reconnects, total.BrokenConns)
	}
}

func TestChaosBaselineNoFaults(t *testing.T) {
	runChaosTrace(t, "baseline", faultnet.Faults{}, faultnet.Faults{})
}

func TestChaosClientSideLatency(t *testing.T) {
	runChaosTrace(t, "latency",
		faultnet.Faults{Seed: 1, LatencyProb: 0.05, Latency: 5 * time.Millisecond},
		faultnet.Faults{})
}

func TestChaosClientSideWriteErrors(t *testing.T) {
	runChaosTrace(t, "write-errors",
		faultnet.Faults{Seed: 2, WriteErrProb: 0.05},
		faultnet.Faults{})
}

func TestChaosClientSideReadErrors(t *testing.T) {
	runChaosTrace(t, "read-errors",
		faultnet.Faults{Seed: 3, ReadErrProb: 0.05},
		faultnet.Faults{})
}

func TestChaosClientSidePartialWrites(t *testing.T) {
	runChaosTrace(t, "partial-writes",
		faultnet.Faults{Seed: 4, PartialWriteProb: 0.05},
		faultnet.Faults{})
}

func TestChaosClientSideResets(t *testing.T) {
	runChaosTrace(t, "resets",
		faultnet.Faults{Seed: 5, ResetProb: 0.03},
		faultnet.Faults{})
}

func TestChaosClientSideBlackholes(t *testing.T) {
	runChaosTrace(t, "blackholes",
		faultnet.Faults{Seed: 6, BlackholeProb: 0.02},
		faultnet.Faults{})
}

func TestChaosServerSideFaults(t *testing.T) {
	// Faults on the server's view of every accepted connection: replies
	// die mid-frame, reads fail, the lot.
	runChaosTrace(t, "server-side",
		faultnet.Faults{},
		faultnet.Faults{Seed: 7, WriteErrProb: 0.02, ReadErrProb: 0.02, PartialWriteProb: 0.02, ResetProb: 0.01})
}

func TestChaosBothSidesMixed(t *testing.T) {
	runChaosTrace(t, "mixed",
		faultnet.Faults{Seed: 8, LatencyProb: 0.03, Latency: 2 * time.Millisecond, WriteErrProb: 0.02, ReadErrProb: 0.02, ResetProb: 0.01},
		faultnet.Faults{Seed: 9, WriteErrProb: 0.02, PartialWriteProb: 0.02})
}

// TestChaosServerRestartMidTrace stops the server entirely halfway
// through a trace and restarts it on the same address. The
// retry-configured client must ride through: the trace completes, every
// successful open returns the right bytes, and the reconnect is
// observable in ClientStats.
func TestChaosServerRestartMidTrace(t *testing.T) {
	seqs, store := chaosTrace(t, 0xBEEF, 300)
	// Flatten to one sequence so the restart point is deterministic.
	var seq []string
	for _, s := range seqs {
		seq = append(seq, s...)
	}

	start := func(addr string) (*Server, net.Listener, chan error) {
		srv, err := NewServer(store, ServerConfig{GroupSize: 4, CacheCapacity: 64})
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(l) }()
		return srv, l, done
	}

	srv1, l1, done1 := start("127.0.0.1:0")
	addr := l1.Addr().String()

	cfg := chaosClientConfig(99)
	cfg.Dialer = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	conn, err := cfg.Dialer()
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(conn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	half := len(seq) / 2
	for n, path := range seq[:half] {
		data, err := client.Open(path)
		if err != nil {
			t.Fatalf("pre-restart open %d (%s): %v", n, path, err)
		}
		if want := "contents of " + path; string(data) != want {
			t.Fatalf("pre-restart open %s returned %q", path, data)
		}
	}

	// Full restart: stop serving, then bring a fresh server up on the
	// same address before the client's next request.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done1; err != nil {
		t.Fatalf("first serve: %v", err)
	}
	srv2, _, done2 := start(addr)
	defer func() {
		if err := srv2.Close(); err != nil {
			t.Errorf("second close: %v", err)
		}
		if err := <-done2; err != nil {
			t.Errorf("second serve: %v", err)
		}
	}()

	for n, path := range seq[half:] {
		data, err := client.Open(path)
		if err != nil {
			t.Fatalf("post-restart open %d (%s): %v", n, path, err)
		}
		if want := "contents of " + path; string(data) != want {
			t.Fatalf("post-restart open %s returned %q", path, data)
		}
	}

	st := client.Stats()
	if st.Reconnects == 0 {
		t.Errorf("restart survived without an observable reconnect: %+v", st)
	}
	if st.Opens != st.Hits+st.Fetches {
		t.Errorf("inconsistent stats after restart: %+v", st)
	}
	if srv2.Stats().Requests == 0 {
		t.Error("restarted server served no requests")
	}
}

// TestChaosDegradedModeServesHitsDuringOutage: with the server gone and
// redial failing, cache hits keep working while misses fail fast with
// ErrConnBroken.
func TestChaosDegradedModeServesHitsDuringOutage(t *testing.T) {
	store := seededStore(t, 8)
	srv, err := NewServer(store, ServerConfig{GroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	cfg := ClientConfig{
		CacheCapacity: 8,
		Timeout:       200 * time.Millisecond,
		MaxRetries:    1,
		Backoff:       Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
		Dialer:        func() (net.Conn, error) { return net.Dial("tcp", addr) },
	}
	conn, err := cfg.Dialer()
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(conn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Warm the cache, then kill the server for good.
	for i := 0; i < 4; i++ {
		if _, err := client.Open(fmt.Sprintf("/data/f%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}

	// A miss poisons the connection and fails with ErrConnBroken (the
	// redial target is gone too).
	if _, err := client.Open("/data/f007"); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("miss during outage: err = %v, want ErrConnBroken", err)
	}
	// Hits keep being served from local data — degraded mode.
	for i := 0; i < 4; i++ {
		path := fmt.Sprintf("/data/f%03d", i)
		data, err := client.Open(path)
		if err != nil {
			t.Fatalf("degraded hit %s: %v", path, err)
		}
		if want := "contents of " + path; string(data) != want {
			t.Fatalf("degraded hit %s = %q", path, data)
		}
	}
	st := client.Stats()
	if st.DegradedHits == 0 {
		t.Errorf("no degraded hits recorded: %+v", st)
	}
	if st.BrokenConns == 0 {
		t.Errorf("no broken connection recorded: %+v", st)
	}
	// Introspection never blocks during the outage either.
	if !client.Contains("/data/f000") {
		t.Error("cached file lost during outage")
	}
	if client.Connected() {
		t.Error("client claims a live connection during outage")
	}
}

// TestChaosWritesUnderFaults: write-through with transport faults must
// either succeed (and the store holds the bytes) or fail with a typed
// error — never corrupt the stored file.
func TestChaosWritesUnderFaults(t *testing.T) {
	store := seededStore(t, 4)
	srv, err := NewServer(store, ServerConfig{GroupSize: 2, WriteTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rawL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(rawL) }()
	defer func() {
		_ = srv.Close()
		<-done
	}()

	cfg := chaosClientConfig(7)
	var stats *faultnet.Stats
	cfg.Dialer, stats = faultnet.Dialer(rawL.Addr().String(),
		faultnet.Faults{Seed: 21, WriteErrProb: 0.1, ReadErrProb: 0.05, ResetProb: 0.03})
	conn, err := cfg.Dialer()
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(conn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	for i := 0; i < 100; i++ {
		path := fmt.Sprintf("/data/f%03d", i%4)
		content := fmt.Sprintf("version %d of %s", i, path)
		if err := client.Write(path, []byte(content)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		got, ok := store.Get(path)
		if !ok || string(got) != content {
			t.Fatalf("store holds %q after write %d, want %q", got, i, content)
		}
	}
	if stats.Total() == 0 {
		t.Error("no faults injected; write chaos was vacuous")
	}
}
