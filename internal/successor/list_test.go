package successor

import (
	"testing"
	"testing/quick"

	"aggcache/internal/trace"
)

func TestNewListValidation(t *testing.T) {
	if _, err := NewList("fifo", 3); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := NewList(PolicyLRU, 0); err == nil {
		t.Error("zero capacity accepted for LRU")
	}
	if _, err := NewList(PolicyOracle, 0); err != nil {
		t.Errorf("oracle with capacity 0 rejected: %v", err)
	}
}

func TestLRUListKeepsMostRecent(t *testing.T) {
	l, _ := NewList(PolicyLRU, 2)
	l.Observe(1)
	l.Observe(2)
	l.Observe(3) // evicts 1
	if l.Contains(1) {
		t.Error("1 retained, want evicted")
	}
	got := l.Ranked()
	if len(got) != 2 || got[0] != 3 || got[1] != 2 {
		t.Errorf("Ranked = %v, want [3 2]", got)
	}
	if f, ok := l.First(); !ok || f != 3 {
		t.Errorf("First = %d,%v want 3,true", f, ok)
	}
}

func TestLRUListReobservePromotes(t *testing.T) {
	l, _ := NewList(PolicyLRU, 3)
	l.Observe(1)
	l.Observe(2)
	l.Observe(3)
	l.Observe(1) // 1 back to front
	got := l.Ranked()
	want := []trace.FileID{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranked = %v, want %v", got, want)
		}
	}
	if l.Count(1) != 2 {
		t.Errorf("Count(1) = %d, want 2", l.Count(1))
	}
}

func TestLFUListKeepsMostFrequent(t *testing.T) {
	l, _ := NewList(PolicyLFU, 2)
	l.Observe(1)
	l.Observe(1)
	l.Observe(2)
	l.Observe(3) // must evict 2 (count 1, older than... 3 replaces worst)
	if !l.Contains(1) {
		t.Error("frequent 1 evicted")
	}
	if l.Contains(2) {
		t.Error("2 retained, want replaced by newcomer 3")
	}
	if f, ok := l.First(); !ok || f != 1 {
		t.Errorf("First = %d,%v want 1,true", f, ok)
	}
}

func TestLFUListRankByCount(t *testing.T) {
	l, _ := NewList(PolicyLFU, 3)
	l.Observe(1)
	l.Observe(2)
	l.Observe(2)
	l.Observe(3)
	l.Observe(3)
	l.Observe(3)
	got := l.Ranked()
	want := []trace.FileID{3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranked = %v, want %v", got, want)
		}
	}
}

func TestLFUTieBrokenByRecency(t *testing.T) {
	l, _ := NewList(PolicyLFU, 2)
	l.Observe(1)
	l.Observe(2) // both count 1, 2 more recent
	got := l.Ranked()
	if got[0] != 2 || got[1] != 1 {
		t.Errorf("Ranked = %v, want [2 1] (recency tie-break)", got)
	}
}

func TestOracleUnbounded(t *testing.T) {
	l, _ := NewList(PolicyOracle, 1)
	for id := trace.FileID(0); id < 100; id++ {
		l.Observe(id)
	}
	if l.Len() != 100 {
		t.Errorf("Len = %d, want 100 (unbounded)", l.Len())
	}
	if l.Capacity() != 0 {
		t.Errorf("Capacity = %d, want 0 (unbounded)", l.Capacity())
	}
	for id := trace.FileID(0); id < 100; id++ {
		if !l.Contains(id) {
			t.Fatalf("oracle lost %d", id)
		}
	}
}

func TestOracleFirstIsMostFrequent(t *testing.T) {
	l, _ := NewList(PolicyOracle, 0)
	l.Observe(5)
	l.Observe(7)
	l.Observe(7)
	if f, ok := l.First(); !ok || f != 7 {
		t.Errorf("First = %d,%v want 7,true", f, ok)
	}
	got := l.Ranked()
	if got[0] != 7 || got[1] != 5 {
		t.Errorf("Ranked = %v, want [7 5]", got)
	}
}

func TestListEmpty(t *testing.T) {
	l, _ := NewList(PolicyLRU, 2)
	if _, ok := l.First(); ok {
		t.Error("First on empty list reported ok")
	}
	if l.Contains(1) {
		t.Error("Contains on empty list")
	}
	if got := l.Ranked(); len(got) != 0 {
		t.Errorf("Ranked = %v, want empty", got)
	}
	if l.Count(1) != 0 {
		t.Error("Count on empty list != 0")
	}
}

// Property: bounded lists never exceed capacity, and the most recently
// observed successor is always retained (for every policy).
func TestListInvariants(t *testing.T) {
	for _, p := range []Policy{PolicyLRU, PolicyLFU} {
		p := p
		f := func(ids []uint8, capRaw uint8) bool {
			capacity := int(capRaw%8) + 1
			l, err := NewList(p, capacity)
			if err != nil {
				return false
			}
			for _, raw := range ids {
				id := trace.FileID(raw % 16)
				l.Observe(id)
				if l.Len() > capacity {
					return false
				}
				if !l.Contains(id) {
					return false
				}
				if f, ok := l.First(); !ok || (p == PolicyLRU && f != id && capacity > 0 && l.Count(f) < 1) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

// Property: for LRU lists the ranked order is exactly the distinct recent
// successors in reverse observation order.
func TestLRUListMatchesModel(t *testing.T) {
	f := func(ids []uint8, capRaw uint8) bool {
		capacity := int(capRaw%6) + 1
		l, err := NewList(PolicyLRU, capacity)
		if err != nil {
			return false
		}
		var model []trace.FileID
		for _, raw := range ids {
			id := trace.FileID(raw % 10)
			l.Observe(id)
			// Update model: remove if present, prepend, truncate.
			for i, v := range model {
				if v == id {
					model = append(model[:i], model[i+1:]...)
					break
				}
			}
			model = append([]trace.FileID{id}, model...)
			if len(model) > capacity {
				model = model[:capacity]
			}
		}
		got := l.Ranked()
		if len(got) != len(model) {
			return false
		}
		for i := range model {
			if got[i] != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecayListValidation(t *testing.T) {
	if _, err := NewDecayList(0, 0.5); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewDecayList(3, 0); err == nil {
		t.Error("lambda 0 accepted")
	}
	if _, err := NewDecayList(3, 1.5); err == nil {
		t.Error("lambda > 1 accepted")
	}
	if _, err := NewList(PolicyDecay, 3); err != nil {
		t.Errorf("PolicyDecay via NewList rejected: %v", err)
	}
}

func TestDecayLambdaOneMatchesLFUOrdering(t *testing.T) {
	// With lambda = 1 weights are plain counts, so ranking equals LFU.
	d, _ := NewDecayList(3, 1.0)
	f, _ := NewList(PolicyLFU, 3)
	seq := []trace.FileID{1, 2, 2, 3, 3, 3, 2}
	for _, id := range seq {
		d.Observe(id)
		f.Observe(id)
	}
	dr, fr := d.Ranked(), f.Ranked()
	for i := range fr {
		if dr[i] != fr[i] {
			t.Fatalf("decay(1.0) ranked %v, LFU ranked %v", dr, fr)
		}
	}
}

func TestDecaySmallLambdaFollowsRecency(t *testing.T) {
	// With tiny lambda, one fresh observation outweighs any history.
	d, _ := NewDecayList(3, 0.01)
	for i := 0; i < 50; i++ {
		d.Observe(1)
	}
	d.Observe(2)
	if f, ok := d.First(); !ok || f != 2 {
		t.Errorf("First = %d,%v want most recent 2", f, ok)
	}
}

func TestDecayAdaptsAfterRegimeChange(t *testing.T) {
	// 1 dominated history, then the workload shifts to 2: decayed
	// frequency crosses over after a few observations while pure LFU
	// clings to 1.
	d, _ := NewDecayList(2, 0.75)
	f, _ := NewList(PolicyLFU, 2)
	for i := 0; i < 30; i++ {
		d.Observe(1)
		f.Observe(1)
	}
	for i := 0; i < 10; i++ {
		d.Observe(2)
		f.Observe(2)
	}
	if first, _ := d.First(); first != 2 {
		t.Errorf("decay First = %d, want 2 after regime change", first)
	}
	if first, _ := f.First(); first != 1 {
		t.Errorf("LFU First = %d, want stale 1 (that is its failure mode)", first)
	}
}

func TestDecayCapacityBound(t *testing.T) {
	d, _ := NewDecayList(2, 0.75)
	for id := trace.FileID(0); id < 20; id++ {
		d.Observe(id)
		if d.Len() > 2 {
			t.Fatalf("Len = %d exceeds capacity", d.Len())
		}
		if !d.Contains(id) {
			t.Fatalf("most recent %d not retained", id)
		}
	}
}
