package successor

import (
	"aggcache/internal/trace"
)

// Tracker consumes a file-access sequence and maintains the per-file
// successor lists plus the access counts used for weighting. It is the
// online component the aggregating cache (and the server in fsnet) embeds:
// one Observe call per open event, O(list capacity) work.
//
// Tracker is not safe for concurrent use; callers that share one across
// goroutines (e.g. a network server) must serialize access.
type Tracker struct {
	policy   Policy
	capacity int
	lambda   float64
	// lists and counts are dense per-file tables indexed by FileID —
	// interned IDs are assigned densely in first-use order, so direct
	// indexing replaces the map hashing that used to dominate the
	// Observe hot path. Slots for never-seen ids are nil/zero.
	lists    []*List
	counts   []uint64
	tracked  int // number of non-nil lists
	prev     trace.FileID
	hasPrev  bool
	observed uint64
	// prevBySrc holds per-source predecessor contexts for ObserveFrom:
	// the paper's §2.2 asks whether events should be differentiated "based
	// on the identity of the driving client, program, user, or process" -
	// interleaved sources otherwise manufacture transitions that never
	// happened on any machine.
	prevBySrc map[uint64]trace.FileID
}

// NewTracker returns a tracker whose per-file lists use the given policy
// and capacity. PolicyDecay uses DefaultDecay; use NewDecayTracker for an
// explicit factor.
func NewTracker(policy Policy, capacity int) (*Tracker, error) {
	// Validate eagerly so Observe never fails.
	if _, err := NewList(policy, capacity); err != nil {
		return nil, err
	}
	t := &Tracker{policy: policy, capacity: capacity}
	if policy == PolicyDecay {
		t.lambda = DefaultDecay
	}
	return t, nil
}

// NewDecayTracker returns a tracker whose lists use PolicyDecay with an
// explicit decay factor.
func NewDecayTracker(capacity int, lambda float64) (*Tracker, error) {
	if _, err := NewDecayList(capacity, lambda); err != nil {
		return nil, err
	}
	return &Tracker{policy: PolicyDecay, capacity: capacity, lambda: lambda}, nil
}

// Observe records the next file access in the sequence: it increments the
// file's access count and registers it as the immediate successor of the
// previously observed file.
func (t *Tracker) Observe(id trace.FileID) {
	t.observed++
	t.bumpCount(id)
	if t.hasPrev {
		t.listFor(t.prev).Observe(id)
	}
	t.prev = id
	t.hasPrev = true
}

// bumpCount increments id's dense access-count slot, growing the table
// on first sight of a high id.
func (t *Tracker) bumpCount(id trace.FileID) {
	if int(id) >= len(t.counts) {
		t.counts = growDense(t.counts, int(id))
	}
	t.counts[id]++
}

// growDense extends a dense per-file table so index id is addressable,
// over-allocating by half to amortize regrowth.
func growDense[T any](s []T, id int) []T {
	grown := make([]T, id+1+len(s)/2)
	copy(grown, s)
	return grown
}

// ObserveFrom records an access attributed to a specific source (a
// client, user or process): the transition is taken against the source's
// own previous access, while the successor lists and counts remain
// shared. Use this when one tracker ingests interleaved streams, e.g. a
// server learning from several clients at once.
func (t *Tracker) ObserveFrom(src uint64, id trace.FileID) {
	t.observed++
	t.bumpCount(id)
	if t.prevBySrc == nil {
		t.prevBySrc = make(map[uint64]trace.FileID)
	}
	if prev, ok := t.prevBySrc[src]; ok {
		t.listFor(prev).Observe(id)
	}
	t.prevBySrc[src] = id
}

// ForgetSource drops a source's predecessor context (e.g. when its
// connection closes); its contributions to the shared lists remain.
func (t *Tracker) ForgetSource(src uint64) {
	delete(t.prevBySrc, src)
}

// ObserveAll feeds a whole sequence through Observe.
func (t *Tracker) ObserveAll(seq []trace.FileID) {
	for _, id := range seq {
		t.Observe(id)
	}
}

// Reset clears every predecessor context (e.g. at a session boundary)
// without discarding accumulated metadata.
func (t *Tracker) Reset() {
	t.hasPrev = false
	t.prevBySrc = nil
}

// List returns the successor list for id, or nil if id has never been seen
// in predecessor position. The returned list is live; callers must not
// mutate it concurrently with Observe.
func (t *Tracker) List(id trace.FileID) *List {
	if int(id) >= len(t.lists) {
		return nil
	}
	return t.lists[id]
}

// Successors returns id's candidate successors, best first. The slice is
// freshly allocated; hot paths use AppendSuccessors with a reused buffer.
func (t *Tracker) Successors(id trace.FileID) []trace.FileID {
	if l := t.List(id); l != nil {
		return l.Ranked()
	}
	return nil
}

// AppendSuccessors appends id's candidate successors, best first, to dst
// and returns the extended slice, allocating nothing when dst has spare
// capacity. The group builder calls this once per chain step, so it must
// stay off the heap.
func (t *Tracker) AppendSuccessors(dst []trace.FileID, id trace.FileID) []trace.FileID {
	if l := t.List(id); l != nil {
		return l.AppendRanked(dst)
	}
	return dst
}

// First returns id's most likely immediate successor.
func (t *Tracker) First(id trace.FileID) (trace.FileID, bool) {
	if l := t.List(id); l != nil {
		return l.First()
	}
	return 0, false
}

// AccessCount returns how many times id has been observed.
func (t *Tracker) AccessCount(id trace.FileID) uint64 {
	if int(id) >= len(t.counts) {
		return 0
	}
	return t.counts[id]
}

// Counts returns a copy of the per-file access counts for every observed
// file.
func (t *Tracker) Counts() map[trace.FileID]uint64 {
	out := make(map[trace.FileID]uint64)
	for id, n := range t.counts {
		if n != 0 {
			out[trace.FileID(id)] = n
		}
	}
	return out
}

// Observed returns the total number of observations.
func (t *Tracker) Observed() uint64 { return t.observed }

// TrackedFiles returns how many files have successor lists.
func (t *Tracker) TrackedFiles() int { return t.tracked }

// MetadataEntries returns the total number of retained successor entries —
// the paper's measure of metadata cost (§4.4 argues it stays tiny).
func (t *Tracker) MetadataEntries() int {
	var n int
	for _, l := range t.lists {
		if l != nil {
			n += l.Len()
		}
	}
	return n
}

func (t *Tracker) listFor(id trace.FileID) *List {
	if int(id) >= len(t.lists) {
		t.lists = growDense(t.lists, int(id))
	}
	if l := t.lists[id]; l != nil {
		return l
	}
	var (
		l   *List
		err error
	)
	if t.policy == PolicyDecay {
		l, err = NewDecayList(t.capacity, t.lambda)
	} else {
		l, err = NewList(t.policy, t.capacity)
	}
	if err != nil {
		// NewTracker validated the configuration; this is unreachable.
		panic("successor: invalid tracker configuration: " + err.Error())
	}
	t.lists[id] = l
	t.tracked++
	return l
}
