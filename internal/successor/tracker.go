package successor

import (
	"aggcache/internal/trace"
)

// Tracker consumes a file-access sequence and maintains the per-file
// successor lists plus the access counts used for weighting. It is the
// online component the aggregating cache (and the server in fsnet) embeds:
// one Observe call per open event, O(list capacity) work.
//
// Tracker is not safe for concurrent use; callers that share one across
// goroutines (e.g. a network server) must serialize access.
type Tracker struct {
	policy   Policy
	capacity int
	lambda   float64
	lists    map[trace.FileID]*List
	counts   map[trace.FileID]uint64
	prev     trace.FileID
	hasPrev  bool
	observed uint64
	// prevBySrc holds per-source predecessor contexts for ObserveFrom:
	// the paper's §2.2 asks whether events should be differentiated "based
	// on the identity of the driving client, program, user, or process" -
	// interleaved sources otherwise manufacture transitions that never
	// happened on any machine.
	prevBySrc map[uint64]trace.FileID
}

// NewTracker returns a tracker whose per-file lists use the given policy
// and capacity. PolicyDecay uses DefaultDecay; use NewDecayTracker for an
// explicit factor.
func NewTracker(policy Policy, capacity int) (*Tracker, error) {
	// Validate eagerly so Observe never fails.
	if _, err := NewList(policy, capacity); err != nil {
		return nil, err
	}
	t := &Tracker{
		policy:   policy,
		capacity: capacity,
		lists:    make(map[trace.FileID]*List),
		counts:   make(map[trace.FileID]uint64),
	}
	if policy == PolicyDecay {
		t.lambda = DefaultDecay
	}
	return t, nil
}

// NewDecayTracker returns a tracker whose lists use PolicyDecay with an
// explicit decay factor.
func NewDecayTracker(capacity int, lambda float64) (*Tracker, error) {
	if _, err := NewDecayList(capacity, lambda); err != nil {
		return nil, err
	}
	return &Tracker{
		policy:   PolicyDecay,
		capacity: capacity,
		lambda:   lambda,
		lists:    make(map[trace.FileID]*List),
		counts:   make(map[trace.FileID]uint64),
	}, nil
}

// Observe records the next file access in the sequence: it increments the
// file's access count and registers it as the immediate successor of the
// previously observed file.
func (t *Tracker) Observe(id trace.FileID) {
	t.observed++
	t.counts[id]++
	if t.hasPrev {
		t.listFor(t.prev).Observe(id)
	}
	t.prev = id
	t.hasPrev = true
}

// ObserveFrom records an access attributed to a specific source (a
// client, user or process): the transition is taken against the source's
// own previous access, while the successor lists and counts remain
// shared. Use this when one tracker ingests interleaved streams, e.g. a
// server learning from several clients at once.
func (t *Tracker) ObserveFrom(src uint64, id trace.FileID) {
	t.observed++
	t.counts[id]++
	if t.prevBySrc == nil {
		t.prevBySrc = make(map[uint64]trace.FileID)
	}
	if prev, ok := t.prevBySrc[src]; ok {
		t.listFor(prev).Observe(id)
	}
	t.prevBySrc[src] = id
}

// ForgetSource drops a source's predecessor context (e.g. when its
// connection closes); its contributions to the shared lists remain.
func (t *Tracker) ForgetSource(src uint64) {
	delete(t.prevBySrc, src)
}

// ObserveAll feeds a whole sequence through Observe.
func (t *Tracker) ObserveAll(seq []trace.FileID) {
	for _, id := range seq {
		t.Observe(id)
	}
}

// Reset clears every predecessor context (e.g. at a session boundary)
// without discarding accumulated metadata.
func (t *Tracker) Reset() {
	t.hasPrev = false
	t.prevBySrc = nil
}

// List returns the successor list for id, or nil if id has never been seen
// in predecessor position. The returned list is live; callers must not
// mutate it concurrently with Observe.
func (t *Tracker) List(id trace.FileID) *List {
	return t.lists[id]
}

// Successors returns id's candidate successors, best first.
func (t *Tracker) Successors(id trace.FileID) []trace.FileID {
	if l, ok := t.lists[id]; ok {
		return l.Ranked()
	}
	return nil
}

// First returns id's most likely immediate successor.
func (t *Tracker) First(id trace.FileID) (trace.FileID, bool) {
	if l, ok := t.lists[id]; ok {
		return l.First()
	}
	return 0, false
}

// AccessCount returns how many times id has been observed.
func (t *Tracker) AccessCount(id trace.FileID) uint64 { return t.counts[id] }

// Counts returns a copy of the per-file access counts for every observed
// file.
func (t *Tracker) Counts() map[trace.FileID]uint64 {
	out := make(map[trace.FileID]uint64, len(t.counts))
	for id, n := range t.counts {
		out[id] = n
	}
	return out
}

// Observed returns the total number of observations.
func (t *Tracker) Observed() uint64 { return t.observed }

// TrackedFiles returns how many files have successor lists.
func (t *Tracker) TrackedFiles() int { return len(t.lists) }

// MetadataEntries returns the total number of retained successor entries —
// the paper's measure of metadata cost (§4.4 argues it stays tiny).
func (t *Tracker) MetadataEntries() int {
	var n int
	for _, l := range t.lists {
		n += l.Len()
	}
	return n
}

func (t *Tracker) listFor(id trace.FileID) *List {
	if l, ok := t.lists[id]; ok {
		return l
	}
	var (
		l   *List
		err error
	)
	if t.policy == PolicyDecay {
		l, err = NewDecayList(t.capacity, t.lambda)
	} else {
		l, err = NewList(t.policy, t.capacity)
	}
	if err != nil {
		// NewTracker validated the configuration; this is unreachable.
		panic("successor: invalid tracker configuration: " + err.Error())
	}
	t.lists[id] = l
	return l
}
