package successor

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"aggcache/internal/trace"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, tt := range []struct {
		name  string
		build func() (*Tracker, error)
	}{
		{"lru", func() (*Tracker, error) { return NewTracker(PolicyLRU, 3) }},
		{"lfu", func() (*Tracker, error) { return NewTracker(PolicyLFU, 2) }},
		{"decay", func() (*Tracker, error) { return NewDecayTracker(4, 0.6) }},
		{"oracle", func() (*Tracker, error) { return NewTracker(PolicyOracle, 0) }},
	} {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			orig, err := tt.build()
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(5))
			var seq []trace.FileID
			for i := 0; i < 2000; i++ {
				seq = append(seq, trace.FileID(rng.Intn(60)))
			}
			orig.ObserveAll(seq)

			var buf bytes.Buffer
			if err := orig.Save(&buf); err != nil {
				t.Fatal(err)
			}
			restored, err := LoadTracker(&buf)
			if err != nil {
				t.Fatal(err)
			}

			// Identical observable state: counts, rankings, metadata.
			if restored.Observed() != orig.Observed() {
				t.Errorf("Observed = %d, want %d", restored.Observed(), orig.Observed())
			}
			if restored.TrackedFiles() != orig.TrackedFiles() {
				t.Errorf("TrackedFiles = %d, want %d", restored.TrackedFiles(), orig.TrackedFiles())
			}
			for id := trace.FileID(0); id < 60; id++ {
				if restored.AccessCount(id) != orig.AccessCount(id) {
					t.Fatalf("AccessCount(%d) = %d, want %d",
						id, restored.AccessCount(id), orig.AccessCount(id))
				}
				a, b := orig.Successors(id), restored.Successors(id)
				if len(a) != len(b) {
					t.Fatalf("Successors(%d) = %v, want %v", id, b, a)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("Successors(%d) = %v, want %v", id, b, a)
					}
				}
			}

			// Both must evolve identically from here on: the
			// predecessor context survived too.
			next := trace.FileID(7)
			orig.Observe(next)
			restored.Observe(next)
			for id := trace.FileID(0); id < 60; id++ {
				a, b := orig.Successors(id), restored.Successors(id)
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("post-restore divergence at Successors(%d)", id)
					}
				}
			}
		})
	}
}

func TestLoadTrackerRejectsGarbage(t *testing.T) {
	if _, err := LoadTracker(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := LoadTracker(strings.NewReader("XXXXnope")); err != ErrBadMetadata {
		t.Errorf("err = %v, want ErrBadMetadata", err)
	}
}

func TestLoadTrackerRejectsTruncation(t *testing.T) {
	tr, _ := NewTracker(PolicyLRU, 3)
	tr.ObserveAll([]trace.FileID{1, 2, 3, 1, 2, 3})
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 10, len(full) / 2, len(full) - 1} {
		if _, err := LoadTracker(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated snapshot at %d accepted", cut)
		}
	}
}

func TestSaveLoadEmptyTracker(t *testing.T) {
	tr, _ := NewTracker(PolicyLRU, 3)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadTracker(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Observed() != 0 || restored.TrackedFiles() != 0 {
		t.Error("empty tracker not empty after restore")
	}
}
