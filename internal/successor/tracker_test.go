package successor

import (
	"bytes"
	"strings"
	"testing"

	"aggcache/internal/trace"
)

func TestTrackerObserveBuildsLists(t *testing.T) {
	tr, err := NewTracker(PolicyLRU, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr.ObserveAll([]trace.FileID{1, 2, 1, 3})
	// Successors of 1: 2 then 3 (3 most recent).
	got := tr.Successors(1)
	if len(got) != 2 || got[0] != 3 || got[1] != 2 {
		t.Errorf("Successors(1) = %v, want [3 2]", got)
	}
	if f, ok := tr.First(2); !ok || f != 1 {
		t.Errorf("First(2) = %d,%v want 1,true", f, ok)
	}
	if _, ok := tr.First(3); ok {
		t.Error("First(3) reported a successor; 3 is the last access")
	}
}

func TestTrackerAccessCounts(t *testing.T) {
	tr, _ := NewTracker(PolicyLRU, 2)
	tr.ObserveAll([]trace.FileID{5, 5, 7})
	if tr.AccessCount(5) != 2 || tr.AccessCount(7) != 1 || tr.AccessCount(9) != 0 {
		t.Errorf("counts = %d,%d,%d", tr.AccessCount(5), tr.AccessCount(7), tr.AccessCount(9))
	}
	if tr.Observed() != 3 {
		t.Errorf("Observed = %d, want 3", tr.Observed())
	}
}

func TestTrackerReset(t *testing.T) {
	tr, _ := NewTracker(PolicyLRU, 2)
	tr.Observe(1)
	tr.Reset()
	tr.Observe(2)
	// The 1->2 transition must NOT have been recorded.
	if tr.List(1) != nil && tr.List(1).Contains(2) {
		t.Error("transition recorded across Reset")
	}
}

func TestTrackerSelfSuccession(t *testing.T) {
	tr, _ := NewTracker(PolicyLRU, 2)
	tr.ObserveAll([]trace.FileID{4, 4})
	if f, ok := tr.First(4); !ok || f != 4 {
		t.Errorf("First(4) = %d,%v want self-successor 4", f, ok)
	}
}

func TestTrackerMetadataEntries(t *testing.T) {
	tr, _ := NewTracker(PolicyLRU, 2)
	tr.ObserveAll([]trace.FileID{1, 2, 3, 1, 2, 3})
	// Each of 1,2,3 has at least one successor; entries bounded by cap.
	n := tr.MetadataEntries()
	if n < 3 || n > 6 {
		t.Errorf("MetadataEntries = %d, want within [3,6]", n)
	}
	if tr.TrackedFiles() != 3 {
		t.Errorf("TrackedFiles = %d, want 3", tr.TrackedFiles())
	}
}

func TestNewTrackerValidation(t *testing.T) {
	if _, err := NewTracker("bogus", 2); err == nil {
		t.Error("bogus policy accepted")
	}
	if _, err := NewTracker(PolicyLFU, -1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestEvaluateReplacementDeterministicSequence(t *testing.T) {
	// Perfectly repeating A B A B ...: after the first transition the
	// successor is always retained, so misses = 2 (first A->B, first
	// B->A) out of 9 transitions.
	seq := []trace.FileID{1, 2, 1, 2, 1, 2, 1, 2, 1, 2}
	ev, err := EvaluateReplacement(seq, PolicyLRU, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Transitions != 9 {
		t.Fatalf("Transitions = %d, want 9", ev.Transitions)
	}
	if ev.Missed != 2 {
		t.Errorf("Missed = %d, want 2", ev.Missed)
	}
}

func TestEvaluateReplacementAlternatingNeedsCapacity2(t *testing.T) {
	// A's successor alternates B,C,B,C: a 1-entry LRU list always holds
	// the wrong one, a 2-entry list holds both after warmup.
	seq := []trace.FileID{1, 2, 1, 3, 1, 2, 1, 3, 1, 2, 1, 3}
	one, err := EvaluateReplacement(seq, PolicyLRU, 1)
	if err != nil {
		t.Fatal(err)
	}
	two, err := EvaluateReplacement(seq, PolicyLRU, 2)
	if err != nil {
		t.Fatal(err)
	}
	if one.MissProbability() <= two.MissProbability() {
		t.Errorf("cap1 miss %.3f not worse than cap2 miss %.3f",
			one.MissProbability(), two.MissProbability())
	}
}

func TestOracleLowerBoundsOnlinePolicies(t *testing.T) {
	// On any sequence the Oracle's miss probability is <= LRU's and
	// LFU's at every capacity.
	seq := []trace.FileID{1, 2, 3, 1, 2, 4, 1, 3, 2, 1, 2, 3, 4, 1, 2, 1, 3, 1, 2, 2, 4, 1}
	oracle, err := EvaluateReplacement(seq, PolicyOracle, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{PolicyLRU, PolicyLFU} {
		for capacity := 1; capacity <= 4; capacity++ {
			ev, err := EvaluateReplacement(seq, p, capacity)
			if err != nil {
				t.Fatal(err)
			}
			if ev.Missed < oracle.Missed {
				t.Errorf("%s cap=%d missed %d < oracle %d", p, capacity, ev.Missed, oracle.Missed)
			}
		}
	}
}

func TestEvaluateReplacementSweepMonotonicity(t *testing.T) {
	// Larger lists can only retain more: miss probability must be
	// non-increasing in capacity for LRU.
	seq := make([]trace.FileID, 0, 4000)
	// Pseudo-random but deterministic pattern with structure.
	x := uint32(12345)
	for i := 0; i < 4000; i++ {
		x = x*1664525 + 1013904223
		seq = append(seq, trace.FileID(x%37))
	}
	probs, err := EvaluateReplacementSweep(seq, PolicyLRU, []int{1, 2, 3, 5, 8, 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(probs); i++ {
		if probs[i] > probs[i-1]+1e-12 {
			t.Errorf("miss prob increased with capacity: %v", probs)
			break
		}
	}
}

func TestEvaluateReplacementEmpty(t *testing.T) {
	ev, err := EvaluateReplacement(nil, PolicyLRU, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MissProbability() != 0 {
		t.Error("empty sequence miss probability != 0")
	}
	if _, err := EvaluateReplacement(nil, "bogus", 1); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestBuildGraph(t *testing.T) {
	tr, _ := NewTracker(PolicyLRU, 2)
	tr.ObserveAll([]trace.FileID{1, 2, 1, 3, 1, 2})
	g := BuildGraph(tr)
	// 1's successors: most recent first = [2 3].
	es := g.Successors(1)
	if len(es) != 2 || es[0].To != 2 || es[1].To != 3 {
		t.Fatalf("Successors(1) = %+v", es)
	}
	if es[0].Weight != 2 {
		t.Errorf("edge 1->2 weight = %d, want 2", es[0].Weight)
	}
	nodes := g.Nodes()
	if len(nodes) != 3 {
		t.Errorf("Nodes = %v, want 3 nodes", nodes)
	}
	if g.EdgeCount() != 4 {
		t.Errorf("EdgeCount = %d, want 4", g.EdgeCount())
	}
}

func TestGraphWriteDOT(t *testing.T) {
	tr, _ := NewTracker(PolicyLRU, 2)
	in := trace.NewInterner()
	a := in.Intern("/bin/a")
	b := in.Intern("/bin/b")
	tr.ObserveAll([]trace.FileID{a, b})
	g := BuildGraph(tr)

	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, in); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"/bin/a" -> "/bin/b"`) {
		t.Errorf("DOT output missing edge: %s", out)
	}
	if !strings.HasPrefix(out, "digraph") || !strings.Contains(out, "}") {
		t.Errorf("DOT output malformed: %s", out)
	}

	// Without an interner, raw ids are used.
	buf.Reset()
	if err := g.WriteDOT(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"f0" -> "f1"`) {
		t.Errorf("DOT output missing fallback names: %s", buf.String())
	}
}

func TestNewDecayTracker(t *testing.T) {
	tr, err := NewDecayTracker(3, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	tr.ObserveAll([]trace.FileID{1, 2, 1, 2})
	if f, ok := tr.First(1); !ok || f != 2 {
		t.Errorf("First(1) = %d,%v", f, ok)
	}
	if _, err := NewDecayTracker(3, 2.0); err == nil {
		t.Error("bad lambda accepted")
	}
	// PolicyDecay through the plain constructor works too.
	tr2, err := NewTracker(PolicyDecay, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr2.Observe(1)
	tr2.Observe(2)
	if f, ok := tr2.First(1); !ok || f != 2 {
		t.Errorf("decay tracker First = %d,%v", f, ok)
	}
}

// The paper's §6 conjecture: a recency/frequency hybrid should be at
// least as good as the better of the two pure policies. Verify the decay
// policy is never much worse than LRU and beats LFU on the workload where
// frequency clings to stale phases.
func TestDecayCompetitiveOnDriftingWorkload(t *testing.T) {
	// Phase-drifting successor behaviour: A's successor changes every
	// 200 transitions.
	var seq []trace.FileID
	succ := trace.FileID(100)
	for phase := 0; phase < 6; phase++ {
		for i := 0; i < 200; i++ {
			seq = append(seq, 1, succ)
		}
		succ++
	}
	lru, err := EvaluateReplacement(seq, PolicyLRU, 2)
	if err != nil {
		t.Fatal(err)
	}
	lfu, err := EvaluateReplacement(seq, PolicyLFU, 2)
	if err != nil {
		t.Fatal(err)
	}
	decay, err := EvaluateReplacement(seq, PolicyDecay, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("miss prob: lru=%.4f lfu=%.4f decay=%.4f",
		lru.MissProbability(), lfu.MissProbability(), decay.MissProbability())
	if decay.MissProbability() > lru.MissProbability()+1e-9 {
		t.Errorf("decay %.4f worse than lru %.4f", decay.MissProbability(), lru.MissProbability())
	}
	if decay.MissProbability() > lfu.MissProbability()+1e-9 {
		t.Errorf("decay %.4f worse than lfu %.4f", decay.MissProbability(), lfu.MissProbability())
	}
}

func TestObserveFromKeepsStreamsSeparate(t *testing.T) {
	// Client A opens 1,2 and client B opens 10,20, perfectly
	// interleaved. Merged observation would record bogus transitions
	// 1->10, 2->20; per-source observation must not.
	tr, err := NewTracker(PolicyLRU, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tr.ObserveFrom(1, 1)
		tr.ObserveFrom(2, 10)
		tr.ObserveFrom(1, 2)
		tr.ObserveFrom(2, 20)
	}
	if f, ok := tr.First(1); !ok || f != 2 {
		t.Errorf("First(1) = %d,%v want 2", f, ok)
	}
	if f, ok := tr.First(10); !ok || f != 20 {
		t.Errorf("First(10) = %d,%v want 20", f, ok)
	}
	if l := tr.List(1); l != nil && l.Contains(10) {
		t.Error("cross-client transition 1->10 recorded")
	}
	if tr.Observed() != 20 {
		t.Errorf("Observed = %d, want 20", tr.Observed())
	}
}

func TestForgetSource(t *testing.T) {
	tr, _ := NewTracker(PolicyLRU, 2)
	tr.ObserveFrom(7, 1)
	tr.ForgetSource(7)
	tr.ObserveFrom(7, 2)
	// The 1->2 transition must not exist: the context was dropped.
	if l := tr.List(1); l != nil && l.Contains(2) {
		t.Error("transition recorded across ForgetSource")
	}
}

func TestEvaluateReplacementEventsPerClient(t *testing.T) {
	// Two clients each running a perfect chain, interleaved in an
	// irregular order (a regular alternation would itself be a
	// learnable cycle). Each client's own stream stays deterministic.
	var events []trace.Event
	pos := [2]int{}
	x := uint32(99)
	for len(events) < 400 {
		x = x*1664525 + 1013904223
		c := int(x>>30) & 1
		base := trace.FileID(0)
		if c == 1 {
			base = 10
		}
		events = append(events, trace.Event{
			Op:     trace.OpOpen,
			Client: uint16(c + 1),
			File:   base + trace.FileID(pos[c]%3),
		})
		pos[c]++
	}
	merged, err := EvaluateReplacementEvents(events, PolicyLRU, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	perClient, err := EvaluateReplacementEvents(events, PolicyLRU, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("miss prob: merged=%.3f per-client=%.3f", merged.MissProbability(), perClient.MissProbability())
	if perClient.MissProbability() >= merged.MissProbability() {
		t.Errorf("per-client %.3f not below merged %.3f on interleaved chains",
			perClient.MissProbability(), merged.MissProbability())
	}
	// Per-client streams are perfect cycles: after warmup every
	// transition is retained even by a 1-entry list.
	if perClient.MissProbability() > 0.05 {
		t.Errorf("per-client miss prob %.3f, want near 0", perClient.MissProbability())
	}
	// Per-client transitions: one fewer per client than its accesses.
	if perClient.Transitions != uint64(len(events)-2) {
		t.Errorf("Transitions = %d, want %d", perClient.Transitions, len(events)-2)
	}
	// Non-open events are ignored.
	events = append(events, trace.Event{Op: trace.OpWrite, Client: 1, File: 0})
	again, err := EvaluateReplacementEvents(events, PolicyLRU, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if again.Transitions != perClient.Transitions {
		t.Error("write event counted as a transition")
	}
}
