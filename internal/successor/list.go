// Package successor implements the paper's per-file relationship metadata:
// for every file a small, bounded list of its observed immediate successors,
// managed by a pluggable replacement policy. Section 4.4 of the paper shows
// recency (LRU) consistently beats frequency (LFU) for this job, with an
// unbounded Oracle as the upper bound; all three live here, together with
// the Figure-5 evaluator that measures how often each policy fails to
// retain a future successor.
package successor

import (
	"fmt"

	"aggcache/internal/trace"
)

// Policy selects the replacement scheme for per-file successor lists.
type Policy string

// Successor-list replacement policies.
const (
	// PolicyLRU keeps the most recent successors (the paper's choice).
	PolicyLRU Policy = "lru"
	// PolicyLFU keeps the most frequent successors.
	PolicyLFU Policy = "lfu"
	// PolicyDecay ranks successors by exponentially decayed frequency —
	// the recency/frequency hybrid the paper's §6 names as the likely
	// ideal ("may well be based on a combination of recency and
	// frequency"). Each observation first scales every retained weight
	// by the decay factor λ, then credits the observed successor with
	// 1. λ -> 1 approaches LFU; λ -> 0 approaches pure last-successor.
	PolicyDecay Policy = "decay"
	// PolicyOracle keeps every successor ever observed (unbounded); it
	// upper-bounds any online policy regardless of state-space limits.
	PolicyOracle Policy = "oracle"
)

// DefaultDecay is the λ used when PolicyDecay is selected without an
// explicit factor; chosen by the sweep in the package tests.
const DefaultDecay = 0.75

func (p Policy) valid() bool {
	switch p {
	case PolicyLRU, PolicyLFU, PolicyDecay, PolicyOracle:
		return true
	}
	return false
}

// entry is one successor candidate in a list.
type entry struct {
	id    trace.FileID
	count uint64
	// weight is the decayed-frequency score used by PolicyDecay.
	weight float64
	// tick is the last observation time, used for recency ordering and
	// LFU tie-breaks.
	tick uint64
}

// List is a bounded set of immediate-successor candidates for one file.
// The zero value is not usable; create lists through a Tracker or NewList.
type List struct {
	policy   Policy
	capacity int
	lambda   float64
	entries  []entry // maintained in rank order, best candidate first
	clock    uint64
}

// NewList returns an empty successor list. Capacity is ignored for
// PolicyOracle (the list is unbounded). PolicyDecay uses DefaultDecay;
// NewDecayList sets an explicit factor.
func NewList(policy Policy, capacity int) (*List, error) {
	if policy == PolicyDecay {
		return NewDecayList(capacity, DefaultDecay)
	}
	if !policy.valid() {
		return nil, fmt.Errorf("successor: unknown policy %q", policy)
	}
	if policy != PolicyOracle && capacity <= 0 {
		return nil, fmt.Errorf("successor: capacity must be positive, got %d", capacity)
	}
	return &List{policy: policy, capacity: capacity}, nil
}

// NewDecayList returns a PolicyDecay list with decay factor lambda in
// (0, 1].
func NewDecayList(capacity int, lambda float64) (*List, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("successor: capacity must be positive, got %d", capacity)
	}
	if lambda <= 0 || lambda > 1 {
		return nil, fmt.Errorf("successor: decay factor must be in (0,1], got %v", lambda)
	}
	return &List{policy: PolicyDecay, capacity: capacity, lambda: lambda}, nil
}

// Observe records that id was seen as the immediate successor.
func (l *List) Observe(id trace.FileID) {
	l.clock++
	idx := -1
	for i := range l.entries {
		if l.entries[i].id == id {
			idx = i
			break
		}
	}
	switch l.policy {
	case PolicyLRU:
		if idx >= 0 {
			e := l.entries[idx]
			e.count++
			e.tick = l.clock
			copy(l.entries[1:idx+1], l.entries[:idx])
			l.entries[0] = e
			return
		}
		e := entry{id: id, count: 1, tick: l.clock}
		if len(l.entries) < l.capacity {
			l.entries = append(l.entries, entry{})
		}
		copy(l.entries[1:], l.entries)
		l.entries[0] = e

	case PolicyLFU:
		if idx >= 0 {
			l.entries[idx].count++
			l.entries[idx].tick = l.clock
			// Bubble up while strictly more frequent, or equally
			// frequent but more recent, than the entry above.
			for idx > 0 && lfuLess(l.entries[idx-1], l.entries[idx]) {
				l.entries[idx-1], l.entries[idx] = l.entries[idx], l.entries[idx-1]
				idx--
			}
			return
		}
		e := entry{id: id, count: 1, tick: l.clock}
		if len(l.entries) < l.capacity {
			l.entries = append(l.entries, e)
		} else {
			// Replace the worst-ranked entry (list is rank ordered).
			l.entries[len(l.entries)-1] = e
		}
		idx = len(l.entries) - 1
		for idx > 0 && lfuLess(l.entries[idx-1], l.entries[idx]) {
			l.entries[idx-1], l.entries[idx] = l.entries[idx], l.entries[idx-1]
			idx--
		}

	case PolicyDecay:
		for i := range l.entries {
			l.entries[i].weight *= l.lambda
		}
		if idx >= 0 {
			l.entries[idx].count++
			l.entries[idx].weight++
			l.entries[idx].tick = l.clock
		} else {
			e := entry{id: id, count: 1, weight: 1, tick: l.clock}
			if len(l.entries) < l.capacity {
				l.entries = append(l.entries, e)
			} else {
				// Rank order means the worst weight is last.
				l.entries[len(l.entries)-1] = e
			}
			idx = len(l.entries) - 1
		}
		for idx > 0 && decayLess(l.entries[idx-1], l.entries[idx]) {
			l.entries[idx-1], l.entries[idx] = l.entries[idx], l.entries[idx-1]
			idx--
		}
		// A decayed observation can also demote the touched entry
		// relative to none (weights only grow for it), so no downward
		// pass is needed: all other weights shrank uniformly.

	case PolicyOracle:
		if idx >= 0 {
			l.entries[idx].count++
			l.entries[idx].tick = l.clock
			return
		}
		l.entries = append(l.entries, entry{id: id, count: 1, tick: l.clock})
	}
}

// decayLess reports whether a ranks strictly worse than b under decayed
// frequency (lower weight, ties broken by older tick).
func decayLess(a, b entry) bool {
	if a.weight != b.weight {
		return a.weight < b.weight
	}
	return a.tick < b.tick
}

// lfuLess reports whether a ranks strictly worse than b under the LFU
// ordering (lower count, ties broken by older tick).
func lfuLess(a, b entry) bool {
	if a.count != b.count {
		return a.count < b.count
	}
	return a.tick < b.tick
}

// Contains reports whether id is currently retained as a candidate.
func (l *List) Contains(id trace.FileID) bool {
	for i := range l.entries {
		if l.entries[i].id == id {
			return true
		}
	}
	return false
}

// First returns the most likely immediate successor, if any. For LRU that
// is the most recent successor (the paper's "last successor" predictor);
// for LFU the most frequent; for the Oracle the most frequent observed.
func (l *List) First() (trace.FileID, bool) {
	if len(l.entries) == 0 {
		return 0, false
	}
	if l.policy == PolicyOracle {
		best := 0
		for i := 1; i < len(l.entries); i++ {
			if lfuLess(l.entries[best], l.entries[i]) {
				best = i
			}
		}
		return l.entries[best].id, true
	}
	return l.entries[0].id, true
}

// Ranked returns the candidate successors, best first. The slice is freshly
// allocated.
func (l *List) Ranked() []trace.FileID {
	return l.AppendRanked(make([]trace.FileID, 0, len(l.entries)))
}

// AppendRanked appends the candidate successors, best first, to dst and
// returns the extended slice. When dst has spare capacity no allocation
// happens (except for PolicyOracle, whose unbounded entries need a
// sorting copy) — the group builder's hot loop depends on this.
func (l *List) AppendRanked(dst []trace.FileID) []trace.FileID {
	if l.policy == PolicyOracle {
		// Sort a copy by count desc, tick desc.
		tmp := make([]entry, len(l.entries))
		copy(tmp, l.entries)
		for i := 1; i < len(tmp); i++ {
			for j := i; j > 0 && lfuLess(tmp[j-1], tmp[j]); j-- {
				tmp[j-1], tmp[j] = tmp[j], tmp[j-1]
			}
		}
		for i := range tmp {
			dst = append(dst, tmp[i].id)
		}
		return dst
	}
	for i := range l.entries {
		dst = append(dst, l.entries[i].id)
	}
	return dst
}

// Count returns how many times id has been observed while retained.
// Evicted candidates lose their counts, exactly like the paper's bounded
// metadata.
func (l *List) Count(id trace.FileID) uint64 {
	for i := range l.entries {
		if l.entries[i].id == id {
			return l.entries[i].count
		}
	}
	return 0
}

// Len returns the number of retained candidates.
func (l *List) Len() int { return len(l.entries) }

// Capacity returns the configured bound (0 means unbounded Oracle).
func (l *List) Capacity() int {
	if l.policy == PolicyOracle {
		return 0
	}
	return l.capacity
}
