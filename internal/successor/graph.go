package successor

import (
	"fmt"
	"io"
	"sort"

	"aggcache/internal/trace"
)

// Edge is a directed inter-file relationship: From was observed to be
// immediately followed by To, Weight times (while retained in the list).
type Edge struct {
	From   trace.FileID
	To     trace.FileID
	Weight uint64
}

// Graph is the inter-file relationship graph of §2.1, materialized from a
// tracker's successor lists. Edges from each node are ranked by decreasing
// likelihood, mirroring the numbered edges of the paper's Figure 1.
type Graph struct {
	edges map[trace.FileID][]Edge
}

// BuildGraph snapshots the tracker's metadata into a relationship graph.
func BuildGraph(t *Tracker) *Graph {
	g := &Graph{edges: make(map[trace.FileID][]Edge, t.tracked)}
	for from, l := range t.lists {
		if l == nil {
			continue
		}
		ranked := l.Ranked()
		if len(ranked) == 0 {
			continue
		}
		es := make([]Edge, 0, len(ranked))
		for _, to := range ranked {
			es = append(es, Edge{From: trace.FileID(from), To: to, Weight: l.Count(to)})
		}
		g.edges[trace.FileID(from)] = es
	}
	return g
}

// Successors returns the ranked outgoing edges of id (best first).
func (g *Graph) Successors(id trace.FileID) []Edge {
	es := g.edges[id]
	out := make([]Edge, len(es))
	copy(out, es)
	return out
}

// Nodes returns every node with at least one outgoing edge, in ascending
// id order (deterministic for tests and tools).
func (g *Graph) Nodes() []trace.FileID {
	out := make([]trace.FileID, 0, len(g.edges))
	for id := range g.edges {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EdgeCount returns the total number of directed edges.
func (g *Graph) EdgeCount() int {
	var n int
	for _, es := range g.edges {
		n += len(es)
	}
	return n
}

// WriteDOT renders the graph in Graphviz DOT form, labeling each edge with
// its rank (1 = most likely), like the paper's Figure 1. paths resolves
// node names; pass nil to use raw ids.
func (g *Graph) WriteDOT(w io.Writer, paths *trace.Interner) error {
	name := func(id trace.FileID) string {
		if paths != nil {
			if p := paths.Path(id); p != "" {
				return p
			}
		}
		return fmt.Sprintf("f%d", id)
	}
	if _, err := fmt.Fprintln(w, "digraph relationships {"); err != nil {
		return err
	}
	for _, from := range g.Nodes() {
		for rank, e := range g.edges[from] {
			_, err := fmt.Fprintf(w, "  %q -> %q [label=\"%d\"];\n", name(from), name(e.To), rank+1)
			if err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
