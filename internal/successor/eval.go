package successor

import (
	"aggcache/internal/trace"
)

// ReplacementEval is the outcome of replaying an access sequence against a
// successor-list replacement policy (Figure 5 of the paper).
type ReplacementEval struct {
	// Transitions is the number of observed immediate-successor events
	// (sequence length minus one, per contiguous run).
	Transitions uint64
	// Missed counts transitions whose successor was not retained in the
	// predecessor's list at the moment of the access.
	Missed uint64
}

// MissProbability is the likelihood of the policy failing to keep a future
// successor: Missed/Transitions. Because every file's transitions are
// replayed, the average is naturally weighted by file access frequency,
// matching the paper's definition.
func (e ReplacementEval) MissProbability() float64 {
	if e.Transitions == 0 {
		return 0
	}
	return float64(e.Missed) / float64(e.Transitions)
}

// EvaluateReplacement replays seq and measures how often the policy's
// bounded per-file lists fail to contain the actual next file. The check
// happens before the list is updated, so the first observation of a given
// successor is always a miss — including for the Oracle, which can predict
// any previously seen successor but not an unseen one.
func EvaluateReplacement(seq []trace.FileID, policy Policy, capacity int) (ReplacementEval, error) {
	tr, err := NewTracker(policy, capacity)
	if err != nil {
		return ReplacementEval{}, err
	}
	var ev ReplacementEval
	for i, id := range seq {
		if i > 0 {
			ev.Transitions++
			if l := tr.List(seq[i-1]); l == nil || !l.Contains(id) {
				ev.Missed++
			}
		}
		tr.Observe(id)
	}
	return ev, nil
}

// EvaluateReplacementEvents replays open events, attributing each
// transition to the issuing client when perClient is true (so transitions
// never span clients), or treating the merged stream as one sequence when
// false. The successor lists are shared either way; only the predecessor
// context differs. This quantifies the §2.2 modeling question about
// differentiating events by driving client.
func EvaluateReplacementEvents(events []trace.Event, policy Policy, capacity int, perClient bool) (ReplacementEval, error) {
	tr, err := NewTracker(policy, capacity)
	if err != nil {
		return ReplacementEval{}, err
	}
	var ev ReplacementEval
	prevBySrc := make(map[uint64]trace.FileID)
	var prev trace.FileID
	var hasPrev bool
	for _, e := range events {
		if e.Op != trace.OpOpen {
			continue
		}
		var p trace.FileID
		var ok bool
		if perClient {
			p, ok = prevBySrc[uint64(e.Client)]
		} else {
			p, ok = prev, hasPrev
		}
		if ok {
			ev.Transitions++
			if l := tr.List(p); l == nil || !l.Contains(e.File) {
				ev.Missed++
			}
		}
		if perClient {
			tr.ObserveFrom(uint64(e.Client), e.File)
			prevBySrc[uint64(e.Client)] = e.File
		} else {
			tr.Observe(e.File)
			prev, hasPrev = e.File, true
		}
	}
	return ev, nil
}

// EvaluateReplacementSweep runs EvaluateReplacement for every list capacity
// in capacities, returning miss probabilities in the same order. This is
// the exact sweep plotted in Figure 5 (capacities 1..10).
func EvaluateReplacementSweep(seq []trace.FileID, policy Policy, capacities []int) ([]float64, error) {
	out := make([]float64, len(capacities))
	for i, c := range capacities {
		ev, err := EvaluateReplacement(seq, policy, c)
		if err != nil {
			return nil, err
		}
		out[i] = ev.MissProbability()
	}
	return out, nil
}
