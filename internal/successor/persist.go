package successor

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"aggcache/internal/trace"
)

// Metadata persistence
//
// The paper contrasts the aggregating cache with Bestavros' speculation
// work partly through "the non-volatile maintenance of relationship
// information at the server": the successor lists are cheap enough to
// keep durably, so a restarted server resumes with everything it learned.
// Save/LoadTracker implement that with a compact versioned binary format.

var persistMagic = [4]byte{'A', 'G', 'S', 'M'}

const persistVersion = 1

// maxSnapshotID bounds file ids accepted from snapshots: the tracker's
// per-file tables are dense, so an absurd id would otherwise translate
// directly into an absurd allocation.
const maxSnapshotID = 1 << 28

// ErrBadMetadata is returned by LoadTracker when the input is not a
// metadata snapshot.
var ErrBadMetadata = errors.New("successor: bad metadata snapshot")

// Save writes a snapshot of the tracker's state (configuration, access
// counts, successor lists, and the predecessor context).
func (t *Tracker) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(persistMagic[:]); err != nil {
		return err
	}
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(tmp[:], v)
		_, err := bw.Write(tmp[:n])
		return err
	}
	putStr := func(s string) error {
		if err := put(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}

	if err := put(persistVersion); err != nil {
		return err
	}
	if err := putStr(string(t.policy)); err != nil {
		return err
	}
	if err := put(uint64(t.capacity)); err != nil {
		return err
	}
	if err := put(math.Float64bits(t.lambda)); err != nil {
		return err
	}
	if err := put(t.observed); err != nil {
		return err
	}
	hasPrev := uint64(0)
	if t.hasPrev {
		hasPrev = 1
	}
	if err := put(hasPrev); err != nil {
		return err
	}
	if err := put(uint64(t.prev)); err != nil {
		return err
	}

	// The dense tables may have zero/nil slots; only materialized entries
	// are persisted, in ascending id order (the format permits any order,
	// so snapshots are now byte-deterministic as a bonus).
	var nCounts uint64
	for _, n := range t.counts {
		if n != 0 {
			nCounts++
		}
	}
	if err := put(nCounts); err != nil {
		return err
	}
	for id, n := range t.counts {
		if n == 0 {
			continue
		}
		if err := put(uint64(id)); err != nil {
			return err
		}
		if err := put(n); err != nil {
			return err
		}
	}

	if err := put(uint64(t.tracked)); err != nil {
		return err
	}
	for id, l := range t.lists {
		if l == nil {
			continue
		}
		if err := put(uint64(id)); err != nil {
			return err
		}
		if err := put(l.clock); err != nil {
			return err
		}
		if err := put(uint64(len(l.entries))); err != nil {
			return err
		}
		for _, e := range l.entries {
			if err := put(uint64(e.id)); err != nil {
				return err
			}
			if err := put(e.count); err != nil {
				return err
			}
			if err := put(math.Float64bits(e.weight)); err != nil {
				return err
			}
			if err := put(e.tick); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadTracker restores a tracker from a snapshot written by Save.
func LoadTracker(r io.Reader) (*Tracker, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("successor: read magic: %w", err)
	}
	if magic != persistMagic {
		return nil, ErrBadMetadata
	}
	get := func() (uint64, error) { return binary.ReadUvarint(br) }
	getStr := func(limit int) (string, error) {
		n, err := get()
		if err != nil {
			return "", err
		}
		if n > uint64(limit) {
			return "", fmt.Errorf("successor: string of %d bytes exceeds limit", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	version, err := get()
	if err != nil {
		return nil, err
	}
	if version != persistVersion {
		return nil, fmt.Errorf("successor: unsupported snapshot version %d", version)
	}
	policyStr, err := getStr(32)
	if err != nil {
		return nil, err
	}
	capacityRaw, err := get()
	if err != nil {
		return nil, err
	}
	if capacityRaw > 1<<20 {
		return nil, fmt.Errorf("successor: capacity %d out of range", capacityRaw)
	}
	lambdaBits, err := get()
	if err != nil {
		return nil, err
	}

	policy := Policy(policyStr)
	lambda := math.Float64frombits(lambdaBits)
	var t *Tracker
	if policy == PolicyDecay {
		t, err = NewDecayTracker(int(capacityRaw), lambda)
	} else {
		t, err = NewTracker(policy, int(capacityRaw))
	}
	if err != nil {
		return nil, fmt.Errorf("successor: snapshot configuration: %w", err)
	}

	if t.observed, err = get(); err != nil {
		return nil, err
	}
	hasPrev, err := get()
	if err != nil {
		return nil, err
	}
	t.hasPrev = hasPrev == 1
	prev, err := get()
	if err != nil {
		return nil, err
	}
	t.prev = trace.FileID(prev)

	nCounts, err := get()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nCounts; i++ {
		id, err := get()
		if err != nil {
			return nil, err
		}
		n, err := get()
		if err != nil {
			return nil, err
		}
		if id > maxSnapshotID {
			return nil, fmt.Errorf("successor: count file id %d out of range", id)
		}
		if int(id) >= len(t.counts) {
			t.counts = growDense(t.counts, int(id))
		}
		t.counts[trace.FileID(id)] = n
	}

	nLists, err := get()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nLists; i++ {
		owner, err := get()
		if err != nil {
			return nil, err
		}
		if owner > maxSnapshotID {
			return nil, fmt.Errorf("successor: list owner id %d out of range", owner)
		}
		l := t.listFor(trace.FileID(owner))
		if l.clock, err = get(); err != nil {
			return nil, err
		}
		nEntries, err := get()
		if err != nil {
			return nil, err
		}
		if t.capacity > 0 && nEntries > uint64(t.capacity) && policy != PolicyOracle {
			return nil, fmt.Errorf("successor: list for %d has %d entries, capacity %d",
				owner, nEntries, t.capacity)
		}
		l.entries = make([]entry, 0, nEntries)
		for j := uint64(0); j < nEntries; j++ {
			var e entry
			id, err := get()
			if err != nil {
				return nil, err
			}
			e.id = trace.FileID(id)
			if e.count, err = get(); err != nil {
				return nil, err
			}
			wbits, err := get()
			if err != nil {
				return nil, err
			}
			e.weight = math.Float64frombits(wbits)
			if e.tick, err = get(); err != nil {
				return nil, err
			}
			l.entries = append(l.entries, e)
		}
	}
	return t, nil
}
