package obs

import (
	"bytes"
	"log/slog"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestEventLogRingOverwrite(t *testing.T) {
	l := NewEventLog(3)
	for i, kind := range []string{"a", "b", "c", "d", "e"} {
		_ = i
		l.Record(kind)
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	var kinds []string
	for _, e := range evs {
		kinds = append(kinds, e.Kind)
	}
	if got := strings.Join(kinds, ""); got != "cde" {
		t.Fatalf("retained kinds %q, want oldest-first cde", got)
	}
	if l.Total() != 5 {
		t.Fatalf("Total = %d, want 5", l.Total())
	}
}

func TestEventLogPartialFill(t *testing.T) {
	l := NewEventLog(8)
	l.Record("one", F("k", "v"))
	l.Record("two")
	evs := l.Events()
	if len(evs) != 2 || evs[0].Kind != "one" || evs[1].Kind != "two" {
		t.Fatalf("unexpected events: %+v", evs)
	}
	if len(evs[0].Fields) != 1 || evs[0].Fields[0] != F("k", "v") {
		t.Fatalf("fields not retained: %+v", evs[0].Fields)
	}
}

func TestEventLogFakeClock(t *testing.T) {
	l := NewEventLog(4)
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	l.SetClock(func() time.Time { return now })
	l.Record("tick")
	if got := l.Events()[0].Time; !got.Equal(now) {
		t.Fatalf("event time %v, want %v", got, now)
	}
}

func TestEventLogSlogSink(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(4)
	l.SetSink(slog.New(slog.NewTextHandler(&buf, nil)))
	l.Record("breaker_open", F("peer", "127.0.0.1:9"), F("fails", "3"))
	out := buf.String()
	for _, want := range []string{"breaker_open", "peer=127.0.0.1:9", "fails=3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sink output %q missing %q", out, want)
		}
	}
}

// TestEventLogOverflowWrapsRepeatedly locks the ring's overflow
// contract: however many times the write cursor laps the buffer, Events
// returns exactly the newest capacity entries oldest-first, and Total
// keeps counting the overwritten ones.
func TestEventLogOverflowWrapsRepeatedly(t *testing.T) {
	const capacity = 4
	l := NewEventLog(capacity)
	const n = 3*capacity + 2 // lands mid-buffer after three full laps
	for i := 0; i < n; i++ {
		l.Record("ev", F("i", strconv.Itoa(i)))
	}
	evs := l.Events()
	if len(evs) != capacity {
		t.Fatalf("retained %d events, want %d", len(evs), capacity)
	}
	for k, e := range evs {
		want := strconv.Itoa(n - capacity + k)
		if len(e.Fields) != 1 || e.Fields[0].Value != want {
			t.Fatalf("event %d = %+v, want i=%s", k, e, want)
		}
	}
	if l.Total() != n {
		t.Fatalf("Total = %d, want %d", l.Total(), n)
	}
}

// TestEventLogOverflowKeepsFields asserts overwriting slots does not
// alias field slices between the dropped and surviving events.
func TestEventLogOverflowKeepsFields(t *testing.T) {
	l := NewEventLog(1)
	l.Record("old", F("k", "old"))
	l.Record("new", F("k", "new"))
	evs := l.Events()
	if len(evs) != 1 || evs[0].Kind != "new" || evs[0].Fields[0].Value != "new" {
		t.Fatalf("survivor = %+v, want the newest event intact", evs)
	}
}

func TestEventLogNilReceiver(t *testing.T) {
	var l *EventLog
	l.Record("x", F("k", "v")) // must not panic
	l.SetSink(nil)
	l.SetClock(nil)
	if evs := l.Events(); evs != nil {
		t.Fatalf("nil log Events = %v, want nil", evs)
	}
	if l.Total() != 0 {
		t.Fatalf("nil log Total = %d, want 0", l.Total())
	}
}

func TestEventLogDefaultCapacity(t *testing.T) {
	l := NewEventLog(0)
	for i := 0; i < defaultEventCapacity+10; i++ {
		l.Record("x")
	}
	if got := len(l.Events()); got != defaultEventCapacity {
		t.Fatalf("retained %d, want %d", got, defaultEventCapacity)
	}
}

func TestRegistryEventLog(t *testing.T) {
	r := NewRegistry()
	r.Events().Record("reconnect", F("addr", "a"))
	if got := r.Events().Total(); got != 1 {
		t.Fatalf("Total = %d, want 1", got)
	}
}
