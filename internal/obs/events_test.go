package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestEventLogRingOverwrite(t *testing.T) {
	l := NewEventLog(3)
	for i, kind := range []string{"a", "b", "c", "d", "e"} {
		_ = i
		l.Record(kind)
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	var kinds []string
	for _, e := range evs {
		kinds = append(kinds, e.Kind)
	}
	if got := strings.Join(kinds, ""); got != "cde" {
		t.Fatalf("retained kinds %q, want oldest-first cde", got)
	}
	if l.Total() != 5 {
		t.Fatalf("Total = %d, want 5", l.Total())
	}
}

func TestEventLogPartialFill(t *testing.T) {
	l := NewEventLog(8)
	l.Record("one", F("k", "v"))
	l.Record("two")
	evs := l.Events()
	if len(evs) != 2 || evs[0].Kind != "one" || evs[1].Kind != "two" {
		t.Fatalf("unexpected events: %+v", evs)
	}
	if len(evs[0].Fields) != 1 || evs[0].Fields[0] != F("k", "v") {
		t.Fatalf("fields not retained: %+v", evs[0].Fields)
	}
}

func TestEventLogFakeClock(t *testing.T) {
	l := NewEventLog(4)
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	l.SetClock(func() time.Time { return now })
	l.Record("tick")
	if got := l.Events()[0].Time; !got.Equal(now) {
		t.Fatalf("event time %v, want %v", got, now)
	}
}

func TestEventLogSlogSink(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(4)
	l.SetSink(slog.New(slog.NewTextHandler(&buf, nil)))
	l.Record("breaker_open", F("peer", "127.0.0.1:9"), F("fails", "3"))
	out := buf.String()
	for _, want := range []string{"breaker_open", "peer=127.0.0.1:9", "fails=3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sink output %q missing %q", out, want)
		}
	}
}

func TestEventLogDefaultCapacity(t *testing.T) {
	l := NewEventLog(0)
	for i := 0; i < defaultEventCapacity+10; i++ {
		l.Record("x")
	}
	if got := len(l.Events()); got != defaultEventCapacity {
		t.Fatalf("retained %d, want %d", got, defaultEventCapacity)
	}
}

func TestRegistryEventLog(t *testing.T) {
	r := NewRegistry()
	r.Events().Record("reconnect", F("addr", "a"))
	if got := r.Events().Total(); got != 1 {
		t.Fatalf("Total = %d, want 1", got)
	}
}
