package otrace

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func fixedClock() func() time.Time {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return func() time.Time { return base }
}

func TestRootSamplingCadence(t *testing.T) {
	tr := New(Config{Node: "n1", SampleRate: 4, Now: fixedClock()})
	sampled := 0
	for i := 0; i < 100; i++ {
		if tr.Root().Sampled {
			sampled++
		}
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 roots at rate 4, want 25", sampled)
	}
	if st := tr.Stats(); st.Sampled != 25 {
		t.Fatalf("Stats.Sampled = %d, want 25", st.Sampled)
	}
}

func TestRootSampleEverything(t *testing.T) {
	tr := New(Config{SampleRate: 1, Now: fixedClock()})
	for i := 0; i < 10; i++ {
		c := tr.Root()
		if !c.Sampled || !c.Valid() || c.Span == 0 {
			t.Fatalf("root %d not fully populated at rate 1: %+v", i, c)
		}
	}
}

func TestRootHeadSamplingDisabled(t *testing.T) {
	tr := New(Config{SampleRate: -1, Now: fixedClock()})
	for i := 0; i < 100; i++ {
		if c := tr.Root(); c.Sampled || c.Valid() {
			t.Fatalf("negative rate minted a sampled root: %+v", c)
		}
	}
	// Tail capture must still record.
	ctx := tr.Tail("hit", "/a", fixedClock()(), time.Millisecond)
	if !ctx.Sampled || !ctx.Valid() {
		t.Fatalf("tail capture returned invalid ctx: %+v", ctx)
	}
	if st := tr.Stats(); st.Tails != 1 || st.Recorded != 1 {
		t.Fatalf("Stats after tail = %+v", st)
	}
}

func TestChildInheritsTraceLinksParent(t *testing.T) {
	tr := New(Config{SampleRate: 1, Now: fixedClock()})
	root := tr.Root()
	child := tr.Child(root)
	if child.Hi != root.Hi || child.Lo != root.Lo {
		t.Fatalf("child changed trace ID: %+v vs %+v", child, root)
	}
	if child.Parent != root.Span || child.Span == root.Span || child.Span == 0 {
		t.Fatalf("child parent/span wrong: %+v (root span %x)", child, root.Span)
	}
	if c := tr.Child(Ctx{}); c.Sampled || c.Valid() {
		t.Fatalf("child of zero ctx should be zero, got %+v", c)
	}
	if c := tr.Child(Ctx{Hi: 1, Lo: 2, Span: 3}); c.Sampled {
		t.Fatalf("child of unsampled ctx should be zero, got %+v", c)
	}
}

func TestTraceIDRoundTrip(t *testing.T) {
	c := Ctx{Hi: 0xdeadbeef01020304, Lo: 0x0bad_c0de_0000_00ff}
	id := c.TraceID()
	if len(id) != 32 || id != "deadbeef010203040badc0de000000ff" {
		t.Fatalf("TraceID = %q", id)
	}
	hi, lo, ok := ParseTraceID(id)
	if !ok || hi != c.Hi || lo != c.Lo {
		t.Fatalf("ParseTraceID(%q) = %x %x %v", id, hi, lo, ok)
	}
	hi, lo, ok = ParseTraceID(strings.ToUpper(id))
	if !ok || hi != c.Hi || lo != c.Lo {
		t.Fatalf("uppercase parse failed: %x %x %v", hi, lo, ok)
	}
	for _, bad := range []string{"", "123", strings.Repeat("g", 32), id + "0"} {
		if _, _, ok := ParseTraceID(bad); ok {
			t.Fatalf("ParseTraceID accepted %q", bad)
		}
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	tr := New(Config{SampleRate: 1, Capacity: 4, Now: fixedClock()})
	start := fixedClock()()
	for i := 0; i < 10; i++ {
		ctx := tr.Root()
		tr.Record(ctx, "hit", "/p", start.Add(time.Duration(i)), time.Microsecond)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("resident %d spans, want 4", len(spans))
	}
	for k, s := range spans {
		want := start.Add(time.Duration(6 + k)).UnixNano()
		if s.Start != want {
			t.Fatalf("span %d start %d, want %d (oldest-first newest 4)", k, s.Start, want)
		}
	}
	if st := tr.Stats(); st.Recorded != 10 || st.Resident != 4 {
		t.Fatalf("Stats = %+v, want Recorded 10 Resident 4", st)
	}
}

func TestTraceSpansFiltersByID(t *testing.T) {
	tr := New(Config{SampleRate: 1, Now: fixedClock()})
	start := fixedClock()()
	a := tr.Record(tr.Root(), "hit", "/a", start, time.Millisecond)
	b := tr.Record(tr.Root(), "stage", "/b", start, time.Millisecond)
	tr.Record(tr.Child(a), "forward", "/a", start, time.Millisecond)
	got := tr.TraceSpans(a.Hi, a.Lo)
	if len(got) != 2 {
		t.Fatalf("trace a has %d spans, want 2", len(got))
	}
	for _, s := range got {
		if s.Hi != a.Hi || s.Lo != a.Lo {
			t.Fatalf("foreign span in trace a: %+v", s)
		}
	}
	if got := tr.TraceSpans(b.Hi, b.Lo); len(got) != 1 || got[0].Name != "stage" {
		t.Fatalf("trace b spans = %+v", got)
	}
}

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	if c := tr.Root(); c.Sampled {
		t.Fatal("nil tracer sampled a root")
	}
	if c := tr.Child(Ctx{Hi: 1, Lo: 1, Span: 1, Sampled: true}); c.Sampled {
		t.Fatal("nil tracer derived a child")
	}
	tr.Record(Ctx{Sampled: true}, "x", "", time.Now(), 0)
	if c := tr.Tail("x", "", time.Now(), 0); c.Sampled {
		t.Fatal("nil tracer tail-captured")
	}
	if tr.Spans() != nil || tr.TraceSpans(1, 1) != nil || tr.Node() != "" {
		t.Fatal("nil tracer leaked state")
	}
	if st := tr.Stats(); st != (Stats{}) {
		t.Fatalf("nil Stats = %+v", st)
	}
}

func TestSummariesGroupByTrace(t *testing.T) {
	tr := New(Config{Node: "n1", SampleRate: 1, Now: fixedClock()})
	start := fixedClock()()
	root := tr.Root()
	tr.Record(root, "client_open", "/a", start, 3*time.Millisecond)
	tr.Record(tr.Child(root), "hit", "/a", start.Add(time.Millisecond), time.Millisecond)
	other := tr.Tail("stage", "/slow", start.Add(10*time.Millisecond), 50*time.Millisecond)

	sums := tr.Summaries(10)
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	// Newest first: the tail capture started later.
	if sums[0].TraceID != other.TraceID() || !sums[0].Tail {
		t.Fatalf("sums[0] = %+v, want tail trace %s", sums[0], other.TraceID())
	}
	if sums[1].TraceID != root.TraceID() || sums[1].Spans != 2 || sums[1].Root != "client_open" {
		t.Fatalf("sums[1] = %+v, want 2-span trace rooted at client_open", sums[1])
	}
	if sums[1].DurNS != int64(3*time.Millisecond) {
		t.Fatalf("summary DurNS = %d, want the longest span", sums[1].DurNS)
	}
	if got := tr.Summaries(1); len(got) != 1 {
		t.Fatalf("limit 1 returned %d summaries", len(got))
	}
}

func TestTraceHandlerServesSpans(t *testing.T) {
	tr := New(Config{Node: "n1", SampleRate: 1, Now: fixedClock()})
	start := fixedClock()()
	root := tr.Record(tr.Root(), "client_open", "/a", start, 2*time.Millisecond)
	tr.Record(tr.Child(root), "hit", "/a", start.Add(time.Millisecond), time.Millisecond)

	rec := httptest.NewRecorder()
	tr.TraceHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/trace/"+root.TraceID(), nil))
	if rec.Code != 200 {
		t.Fatalf("status %d body %s", rec.Code, rec.Body)
	}
	var doc TraceDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceID != root.TraceID() || doc.Node != "n1" || len(doc.Spans) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Spans[0].Name != "client_open" || doc.Spans[1].Parent != doc.Spans[0].SpanID {
		t.Fatalf("span order/parentage wrong: %+v", doc.Spans)
	}

	rec = httptest.NewRecorder()
	tr.TraceHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/trace/"+Ctx{Hi: 9, Lo: 9}.TraceID(), nil))
	if rec.Code != 404 {
		t.Fatalf("unknown trace: status %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	tr.TraceHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/trace/nothex", nil))
	if rec.Code != 400 {
		t.Fatalf("bad trace id: status %d, want 400", rec.Code)
	}
}

func TestSummariesHandlerJSON(t *testing.T) {
	tr := New(Config{Node: "n1", SampleRate: 1, Now: fixedClock()})
	tr.Record(tr.Root(), "client_open", "/a", fixedClock()(), time.Millisecond)
	rec := httptest.NewRecorder()
	tr.SummariesHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/traces", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var sums []TraceSummary
	if err := json.Unmarshal(rec.Body.Bytes(), &sums); err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 || sums[0].Node != "n1" || sums[0].Spans != 1 {
		t.Fatalf("sums = %+v", sums)
	}

	// An empty tracer must serve [] (not null) so scrapers can range
	// without a nil check.
	empty := New(Config{SampleRate: 1})
	rec = httptest.NewRecorder()
	empty.SummariesHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/traces", nil))
	if got := strings.TrimSpace(rec.Body.String()); got != "[]" {
		t.Fatalf("empty summaries body = %q, want []", got)
	}
}

func TestIDUniqueness(t *testing.T) {
	tr := New(Config{SampleRate: 1, Now: fixedClock()})
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		c := tr.Root()
		for _, v := range []uint64{c.Hi, c.Lo, c.Span} {
			if v == 0 || seen[v] {
				t.Fatalf("duplicate or zero ID %x at mint %d", v, i)
			}
			seen[v] = true
		}
	}
}
