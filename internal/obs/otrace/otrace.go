// Package otrace is the distributed-tracing layer: 128-bit trace IDs
// minted at the client edge, span contexts propagated hop-by-hop over
// the fsnet v3 wire, and completed spans recorded into a per-node
// bounded ring that /traces and /trace/<id> expose for fleet-wide
// stitching (see cmd/aggbench -trace-collect).
//
// The design rule is zero allocations when unsampled: a Ctx is a small
// value struct, the head-sampling decision is one atomic add, and an
// unsampled request never touches the ring, the heap, or the wire. Only
// two paths pay: head-sampled requests (1-in-SampleRate, default
// 1/1024) and tail-captured ones (any request slower than the server's
// SlowRequest threshold, recorded even when the head sampler said no,
// so the ring always holds the outliers worth debugging).
//
// Every Tracer method is nil-receiver safe, mirroring the obs package:
// an unwired component calls the same code and pays only a nil check.
package otrace

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSampleRate head-samples one request in this many.
const DefaultSampleRate = 1024

// DefaultCapacity is the span ring's default bound.
const DefaultCapacity = 4096

// Ctx is one hop's trace context. The zero value means "not traced":
// it costs nothing to pass around and nothing downstream reacts to it.
// Hi/Lo form the 128-bit trace ID shared by every span of the trace;
// Span is this hop's own span ID and Parent the upstream hop's (0 at
// the root). Sampled is what travels on the wire: a downstream peer
// records its spans iff the bit is set.
type Ctx struct {
	Hi, Lo  uint64
	Span    uint64
	Parent  uint64
	Sampled bool
}

// Valid reports whether the context carries a real trace ID.
func (c Ctx) Valid() bool { return c.Hi|c.Lo != 0 }

// TraceID renders the 128-bit trace ID as 32 lowercase hex digits —
// the form /trace/<id> accepts and exemplars embed. Allocates; call it
// only on sampled paths.
func (c Ctx) TraceID() string {
	var b [32]byte
	hex16(b[:16], c.Hi)
	hex16(b[16:], c.Lo)
	return string(b[:])
}

const hexDigits = "0123456789abcdef"

func hex16(dst []byte, v uint64) {
	for i := 15; i >= 0; i-- {
		dst[i] = hexDigits[v&0xf]
		v >>= 4
	}
}

// ParseTraceID parses the 32-hex-digit form back into (hi, lo).
func ParseTraceID(s string) (hi, lo uint64, ok bool) {
	if len(s) != 32 {
		return 0, 0, false
	}
	for i := 0; i < 32; i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, 0, false
		}
		if i < 16 {
			hi = hi<<4 | d
		} else {
			lo = lo<<4 | d
		}
	}
	return hi, lo, true
}

// Span is one completed unit of work: a phase of a request (hit, stage,
// forward, mirror, …), a whole client call, or a gossip round. Spans
// sharing (Hi, Lo) belong to one trace; Parent links them into a tree.
type Span struct {
	Hi, Lo uint64
	ID     uint64
	Parent uint64
	// Node is the recording node's advertised address; Name the phase.
	Node string
	Name string
	Path string
	// Start is wall-clock unix nanoseconds; Dur the span length.
	Start int64
	Dur   int64
	// Tail marks a span recorded by tail capture (slow request) whose
	// trace was not head-sampled — such traces are single-node.
	Tail bool
}

// Config configures one node's tracer.
type Config struct {
	// Node is the recording node's name, stamped on every span.
	Node string
	// SampleRate head-samples one root mint in N. 0 selects
	// DefaultSampleRate; 1 samples everything; negative disables head
	// sampling (tail capture still records).
	SampleRate int
	// Capacity bounds the span ring (0 selects DefaultCapacity).
	Capacity int
	// Now is the clock; nil selects time.Now. Tests inject a fake.
	Now func() time.Time
}

// Tracer mints trace contexts and records completed spans into a
// bounded ring. All methods are safe for concurrent use and safe on a
// nil receiver.
type Tracer struct {
	node   string
	rate   uint64 // 0 = head sampling off
	now    func() time.Time
	ticket atomic.Uint64 // head-sampling cadence
	idgen  atomic.Uint64 // splitmix64 state for IDs

	mu      sync.Mutex
	ring    []Span
	next    int
	full    bool
	total   uint64 // spans ever recorded
	sampled uint64 // root mints that sampled
	tails   uint64 // tail captures
}

// New builds a tracer. A nil return is deliberate API: callers may hold
// a nil *Tracer and every method no-ops.
func New(cfg Config) *Tracer {
	rate := cfg.SampleRate
	if rate == 0 {
		rate = DefaultSampleRate
	}
	if rate < 0 {
		rate = 0 // tail capture only
	}
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	t := &Tracer{
		node: cfg.Node,
		rate: uint64(rate),
		now:  now,
		ring: make([]Span, capacity),
	}
	// Seed ID generation off the wall clock once so restarts do not
	// reuse trace IDs; every subsequent draw is one atomic add.
	t.idgen.Store(uint64(now().UnixNano()))
	return t
}

// splitmix64 turns the sequential idgen counter into well-mixed IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (t *Tracer) id() uint64 {
	v := splitmix64(t.idgen.Add(0x9e3779b97f4a7c15))
	if v == 0 {
		v = 1
	}
	return v
}

// Node returns the tracer's node name ("" on nil).
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// Root mints a new root context at a trace's entry point (a client
// Open, a server request with no inbound context, a gossip round). The
// head sampler admits one mint in SampleRate; unsampled mints return
// the zero Ctx without touching the heap.
func (t *Tracer) Root() Ctx {
	if t == nil || t.rate == 0 {
		return Ctx{}
	}
	if t.ticket.Add(1)%t.rate != 0 {
		return Ctx{}
	}
	c := Ctx{Hi: t.id(), Lo: t.id(), Span: t.id(), Sampled: true}
	t.mu.Lock()
	t.sampled++
	t.mu.Unlock()
	return c
}

// Child derives this hop's context from an inbound parent: same trace,
// fresh span ID, parent set to the upstream span. An unsampled or zero
// parent yields the zero Ctx.
func (t *Tracer) Child(parent Ctx) Ctx {
	if t == nil || !parent.Sampled || !parent.Valid() {
		return Ctx{}
	}
	return Ctx{Hi: parent.Hi, Lo: parent.Lo, Span: t.id(), Parent: parent.Span, Sampled: true}
}

// Record stores a completed span for a sampled context. Returns the
// context unchanged so call sites can chain into exemplar attachment.
func (t *Tracer) Record(ctx Ctx, name, path string, start time.Time, dur time.Duration) Ctx {
	if t == nil || !ctx.Sampled {
		return ctx
	}
	t.push(Span{
		Hi: ctx.Hi, Lo: ctx.Lo, ID: ctx.Span, Parent: ctx.Parent,
		Node: t.node, Name: name, Path: path,
		Start: start.UnixNano(), Dur: int64(dur),
	})
	return ctx
}

// Tail records a span for a request the head sampler skipped but whose
// latency crossed the slow threshold: a fresh single-node trace ID is
// minted so the span resolves via /trace/<id> and can anchor an
// exemplar. Returns the minted context.
func (t *Tracer) Tail(name, path string, start time.Time, dur time.Duration) Ctx {
	if t == nil {
		return Ctx{}
	}
	ctx := Ctx{Hi: t.id(), Lo: t.id(), Span: t.id(), Sampled: true}
	t.push(Span{
		Hi: ctx.Hi, Lo: ctx.Lo, ID: ctx.Span,
		Node: t.node, Name: name, Path: path,
		Start: start.UnixNano(), Dur: int64(dur),
		Tail: true,
	})
	t.mu.Lock()
	t.tails++
	t.mu.Unlock()
	return ctx
}

func (t *Tracer) push(s Span) {
	t.mu.Lock()
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.total++
	t.mu.Unlock()
}

// Spans returns the ring's contents oldest-first. For inspection and
// tests; the HTTP handlers use the filtered forms below.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spansLocked()
}

func (t *Tracer) spansLocked() []Span {
	if !t.full {
		return append([]Span(nil), t.ring[:t.next]...)
	}
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// TraceSpans returns every ring span belonging to the given trace ID.
func (t *Tracer) TraceSpans(hi, lo uint64) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	for _, s := range t.spansLocked() {
		if s.Hi == hi && s.Lo == lo {
			out = append(out, s)
		}
	}
	return out
}

// Stats is a point-in-time snapshot of the tracer's accounting.
type Stats struct {
	// Recorded counts spans ever pushed (ring overwrites included);
	// Resident is the current ring occupancy.
	Recorded uint64
	Resident int
	// Sampled counts head-sampled root mints, Tails tail captures.
	Sampled uint64
	Tails   uint64
}

// Stats returns the tracer's counters (zero value on nil).
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.full {
		n = len(t.ring)
	}
	return Stats{Recorded: t.total, Resident: n, Sampled: t.sampled, Tails: t.tails}
}
