package otrace

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
)

// JSON shapes shared by the node handlers and the aggbench -trace-collect
// fleet scraper, which joins per-node documents on TraceID.

// SpanJSON is one span in wire-friendly form: IDs as hex strings so
// 64-bit values survive JSON number precision.
type SpanJSON struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	Parent  string `json:"parent_id,omitempty"`
	Node    string `json:"node"`
	Name    string `json:"name"`
	Path    string `json:"path,omitempty"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Tail    bool   `json:"tail,omitempty"`
}

func spanJSON(s Span) SpanJSON {
	var b [32]byte
	hex16(b[:16], s.Hi)
	hex16(b[16:], s.Lo)
	j := SpanJSON{
		TraceID: string(b[:]),
		SpanID:  hexID(s.ID),
		Node:    s.Node,
		Name:    s.Name,
		Path:    s.Path,
		StartNS: s.Start,
		DurNS:   s.Dur,
		Tail:    s.Tail,
	}
	if s.Parent != 0 {
		j.Parent = hexID(s.Parent)
	}
	return j
}

func hexID(v uint64) string {
	var b [16]byte
	hex16(b[:], v)
	return string(b[:])
}

// TraceSummary is one trace as /traces lists it: enough to pick a trace
// worth expanding via /trace/<id>.
type TraceSummary struct {
	TraceID string `json:"trace_id"`
	// Root names the earliest local span (the trace's local entry).
	Root string `json:"root"`
	Path string `json:"path,omitempty"`
	Node string `json:"node"`
	// Spans counts this node's local spans only; stitching across the
	// fleet is the collector's job.
	Spans   int   `json:"spans"`
	StartNS int64 `json:"start_ns"`
	// DurNS is the longest local span — a proxy for the trace's cost.
	DurNS int64 `json:"dur_ns"`
	Tail  bool  `json:"tail,omitempty"`
}

// TraceDoc is the /trace/<id> document: this node's flat span list for
// one trace, newest ring contents only. Parent IDs imply the tree.
type TraceDoc struct {
	TraceID string     `json:"trace_id"`
	Node    string     `json:"node"`
	Spans   []SpanJSON `json:"spans"`
}

// Summaries groups the ring's spans by trace ID, newest trace first.
func (t *Tracer) Summaries(limit int) []TraceSummary {
	spans := t.Spans()
	byTrace := make(map[[2]uint64]*TraceSummary)
	order := make([][2]uint64, 0, 16)
	for _, s := range spans {
		key := [2]uint64{s.Hi, s.Lo}
		sum := byTrace[key]
		if sum == nil {
			var b [32]byte
			hex16(b[:16], s.Hi)
			hex16(b[16:], s.Lo)
			sum = &TraceSummary{
				TraceID: string(b[:]),
				Root:    s.Name,
				Path:    s.Path,
				Node:    s.Node,
				StartNS: s.Start,
			}
			byTrace[key] = sum
			order = append(order, key)
		}
		sum.Spans++
		if s.Start < sum.StartNS || (s.Start == sum.StartNS && s.Parent == 0) {
			sum.StartNS = s.Start
			sum.Root = s.Name
			sum.Path = s.Path
		}
		if s.Dur > sum.DurNS {
			sum.DurNS = s.Dur
		}
		sum.Tail = sum.Tail || s.Tail
	}
	out := make([]TraceSummary, 0, len(order))
	for _, key := range order {
		out = append(out, *byTrace[key])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartNS > out[j].StartNS })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// SummariesHandler serves /traces: recent trace summaries as JSON.
func (t *Tracer) SummariesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		sums := t.Summaries(100)
		if sums == nil {
			sums = []TraceSummary{}
		}
		_ = enc.Encode(sums)
	})
}

// TraceHandler serves /trace/<id>: this node's spans for one trace,
// sorted by start time. Unknown IDs answer 404 so the fleet collector
// can poll every node and keep only the ones that participated.
func (t *Tracer) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/trace/")
		hi, lo, ok := ParseTraceID(id)
		if !ok {
			http.Error(w, "bad trace id: want 32 hex digits", http.StatusBadRequest)
			return
		}
		spans := t.TraceSpans(hi, lo)
		if len(spans) == 0 {
			http.Error(w, "trace not found", http.StatusNotFound)
			return
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		doc := TraceDoc{TraceID: id, Node: t.Node(), Spans: make([]SpanJSON, len(spans))}
		for i, s := range spans {
			doc.Spans[i] = spanJSON(s)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}
