// Package obs is the unified observability layer: atomic counters,
// gauges, and power-of-two-bucket latency histograms behind a named
// registry with label support, Prometheus text-format exposition, a JSON
// snapshot, and a bounded structured event log.
//
// The package is zero-dependency (standard library only) and built for
// hot paths: recording a counter or histogram sample is one atomic add,
// and every mutating method is nil-safe — a nil *Counter, *Gauge,
// *Histogram, *EventLog, or *Registry no-ops — so instrumented code pays
// only a predictable nil-check branch when no registry is configured.
// That property is what keeps the simulator hot path allocation-free
// (DESIGN.md §9) while the same code serves scraped metrics in aggserve.
//
// Typical wiring:
//
//	reg := obs.NewRegistry()
//	opens := reg.Counter("fsnet_server_requests_total", "open requests served")
//	lat := reg.Histogram("fsnet_server_request_latency_ns", "per-request latency",
//		obs.L("phase", "hit"))
//	...
//	opens.Inc()
//	lat.Observe(uint64(time.Since(t0)))
//	...
//	http.Handle("/metrics", reg.MetricsHandler())
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Label is one name=value dimension attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter discards updates and loads as zero, so
// instrumentation sites never need to guard against an absent registry.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a standalone (unregistered) counter. Components use
// standalone counters when no registry is configured, so their stats
// snapshots keep working from the same atomics either way.
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (may go up and down). The zero
// value is ready; a nil *Gauge no-ops.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a standalone (unregistered) gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket i holds samples v with
// bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i), and bucket 0 holds exact
// zeros. 64 value bits plus the zero bucket.
const histBuckets = 65

// Histogram is a fixed power-of-two-bucket histogram: recording is one
// atomic add into the bucket selected by bits.Len64, so the hot path
// never allocates, sorts, or locks. Percentiles come out as bucket upper
// bounds — order-of-magnitude resolution, which is what latency
// reporting needs. Values are plain uint64 (nanoseconds by convention
// for latency series; counts for size distributions). A nil *Histogram
// no-ops.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Uint64
	// exemplars remembers, per bucket, the last traced sample that
	// landed there (nil until one does). Plain Observe never touches
	// this array, so untraced recording stays a single atomic add.
	exemplars [histBuckets]atomic.Pointer[Exemplar]
}

// Exemplar links one histogram bucket to the trace that last landed in
// it, in the OpenMetrics sense: a p99 bucket resolves to a concrete
// reconstructable request via /trace/<id>.
type Exemplar struct {
	// Bucket is the power-of-two bucket index the sample selected.
	Bucket int
	// TraceID is the 32-hex-digit trace identifier.
	TraceID string
	// Value is the observed sample value (nanoseconds for latency).
	Value uint64
}

// NewHistogram returns a standalone (unregistered) histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
}

// ObserveTrace records one sample and pins traceID as the exemplar of
// the bucket it lands in, replacing any earlier exemplar there. Called
// only on sampled paths, so the one allocation (the Exemplar) is paid
// at the sampling rate, never per request.
func (h *Histogram) ObserveTrace(v uint64, traceID string) {
	if h == nil {
		return
	}
	b := bits.Len64(v)
	h.buckets[b].Add(1)
	h.sum.Add(v)
	if traceID != "" {
		h.exemplars[b].Store(&Exemplar{Bucket: b, TraceID: traceID, Value: v})
	}
}

// ObserveDuration records d in nanoseconds (negative durations clamp to
// zero).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d.Nanoseconds()))
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var total uint64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	return total
}

// Sum returns the total of all recorded sample values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Percentile returns the upper bound of the bucket holding the p-th
// percentile sample (p in [0,100]). An empty histogram reports 0.
func (h *Histogram) Percentile(p float64) uint64 {
	if h == nil {
		return 0
	}
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, n := range counts {
		seen += n
		if seen > rank {
			return bucketBound(i)
		}
	}
	return bucketBound(histBuckets - 1)
}

// bucketBound is bucket i's inclusive upper bound: 2^i - 1 (bucket 0
// holds only zeros).
func bucketBound(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return 1<<64 - 1
	}
	return 1<<uint(i) - 1
}

// Snapshot returns a consistent-enough copy of the histogram state for
// exposition. Individual bucket loads are atomic but not mutually
// consistent under concurrent writes; totals settle at quiescence.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
		if e := h.exemplars[i].Load(); e != nil {
			s.Exemplars = append(s.Exemplars, *e)
		}
	}
	s.Sum = h.sum.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Buckets [histBuckets]uint64
	Count   uint64
	Sum     uint64
	// Exemplars holds the per-bucket trace exemplars present at
	// snapshot time, ordered by bucket index (sparse: only buckets a
	// traced sample ever landed in appear).
	Exemplars []Exemplar
}

// Percentile mirrors Histogram.Percentile over the frozen copy.
func (s HistogramSnapshot) Percentile(p float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for i, n := range s.Buckets {
		seen += n
		if seen > rank {
			return bucketBound(i)
		}
	}
	return bucketBound(histBuckets - 1)
}
