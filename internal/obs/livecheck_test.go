package obs

import (
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

// TestLiveExposition is the scrape half of the metrics-smoke check
// (scripts/metrics_smoke.sh, `make metrics-smoke`): point it at a
// running aggserve's /metrics with AGGCACHE_METRICS_URL and it validates
// the live exposition under the strict parser, including the catalogue a
// dashboard would actually chart. Without the env var it skips, so the
// regular test run is unaffected.
func TestLiveExposition(t *testing.T) {
	url := os.Getenv("AGGCACHE_METRICS_URL")
	if url == "" {
		t.Skip("AGGCACHE_METRICS_URL not set; run via `make metrics-smoke`")
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("scrape %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape %s: status %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want text/plain; version=0.0.4", ct)
	}
	parsed, err := ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("live exposition does not parse: %v", err)
	}

	if s, ok := parsed.Find("fsnet_server_requests_total", nil); !ok || s.Value == 0 {
		t.Errorf("fsnet_server_requests_total = %+v, %v; want present and nonzero after load", s, ok)
	}
	if typ := parsed.Types["fsnet_server_request_latency_ns"]; typ != "histogram" {
		t.Errorf("fsnet_server_request_latency_ns type = %q, want histogram", typ)
	}
	var latCount float64
	for _, s := range parsed.Samples {
		if s.Name == "fsnet_server_request_latency_ns_count" {
			latCount += s.Value
		}
	}
	if latCount == 0 {
		t.Error("per-phase latency histogram recorded nothing under load")
	}
	for _, name := range []string{
		"core_cache_hits_total",
		"core_cache_misses_total",
		"fsnet_server_open_conns",
	} {
		if _, ok := parsed.Find(name, nil); !ok {
			t.Errorf("metric %s not exported", name)
		}
	}
}
