package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a metric family.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
	// KindGaugeFunc is a pull-style gauge: its value is computed by a
	// callback at snapshot/exposition time, so components can expose
	// mutex-guarded state (mirror residency, live connections) without
	// paying anything on their hot paths.
	KindGaugeFunc
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindGaugeFunc:
		return "gauge"
	default:
		return "untyped"
	}
}

// Registry is a named collection of metric families. Registration is
// idempotent: asking for a name+label combination that already exists
// returns the existing instrument, so two components may safely share a
// series (their updates aggregate) — but note that a stats snapshot fed
// from a shared series then reports the merged count, so wire one
// registry per server/node when per-instance numbers matter.
//
// All methods are safe for concurrent use, and every method is nil-safe:
// a nil *Registry returns nil instruments, whose methods no-op. That is
// the "no registry configured" fast path.
type Registry struct {
	mu       sync.Mutex
	families []*family // registration order, which is exposition order
	byName   map[string]*family
	events   *EventLog
}

// family is one metric name: shared help/kind, one series per label set.
type family struct {
	name   string
	help   string
	kind   Kind
	series []*series
	byKey  map[string]*series
}

// series is one label combination of a family.
type series struct {
	labels  []Label // sorted by key
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// NewRegistry returns an empty registry with an event log of the default
// capacity (256 events).
func NewRegistry() *Registry {
	return &Registry{
		byName: make(map[string]*family),
		events: NewEventLog(0),
	}
}

// Events returns the registry's structured event log (nil for a nil
// registry, and a nil *EventLog no-ops).
func (r *Registry) Events() *EventLog {
	if r == nil {
		return nil
	}
	return r.events
}

// Counter returns the counter registered under name and labels, creating
// it on first use. Panics if name is invalid or already registered as a
// different kind — both programmer errors caught at wiring time.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindCounter, labels).counter
}

// Gauge returns the gauge registered under name and labels, creating it
// on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindGauge, labels).gauge
}

// Histogram returns the histogram registered under name and labels,
// creating it on first use.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindHistogram, labels).hist
}

// GaugeFunc registers a pull-style gauge whose value is fn() at snapshot
// time. fn must be safe to call from any goroutine; re-registering the
// same name+labels replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	s := r.register(name, help, KindGaugeFunc, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// register finds or creates the family and series. Called from the typed
// entry points only.
func (r *Registry) register(name, help string, kind Kind, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	for _, l := range sorted {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Key, name))
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byKey: make(map[string]*series)}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	key := labelKey(sorted)
	s := f.byKey[key]
	if s == nil {
		s = &series{labels: sorted}
		// The instrument is created under the registry lock so concurrent
		// registrations of the same series observe one shared instance.
		switch kind {
		case KindCounter:
			s.counter = &Counter{}
		case KindGauge:
			s.gauge = &Gauge{}
		case KindHistogram:
			s.hist = &Histogram{}
		}
		f.byKey[key] = s
		f.series = append(f.series, s)
	}
	return s
}

// labelKey canonicalizes a sorted label set.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('\xff')
		b.WriteString(l.Value)
		b.WriteByte('\xfe')
	}
	return b.String()
}

// validName reports whether s is a legal Prometheus metric/label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Sample is one series in a registry snapshot.
type Sample struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []Label
	// Value carries counter, gauge, and gauge-func readings.
	Value float64
	// Hist carries the histogram state (KindHistogram only).
	Hist *HistogramSnapshot
}

// Snapshot freezes every registered series, in registration order.
// Individual reads are atomic, but the snapshot as a whole has relaxed
// consistency under concurrent updates (exactly like the exposition a
// scraper sees).
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type pending struct {
		fam *family
		ser *series
		fn  func() float64 // captured under the lock (GaugeFunc may be replaced)
	}
	flat := make([]pending, 0, 16)
	for _, f := range r.families {
		for _, s := range f.series {
			flat = append(flat, pending{f, s, s.fn})
		}
	}
	r.mu.Unlock()

	// Callbacks and atomic loads run outside the registry lock so a slow
	// GaugeFunc can never wedge concurrent registration.
	out := make([]Sample, 0, len(flat))
	for _, p := range flat {
		smp := Sample{Name: p.fam.name, Help: p.fam.help, Kind: p.fam.kind, Labels: p.ser.labels}
		switch p.fam.kind {
		case KindCounter:
			smp.Value = float64(p.ser.counter.Load())
		case KindGauge:
			smp.Value = float64(p.ser.gauge.Load())
		case KindGaugeFunc:
			if p.fn != nil {
				smp.Value = p.fn()
			}
		case KindHistogram:
			h := p.ser.hist.Snapshot()
			smp.Hist = &h
		}
		out = append(out, smp)
	}
	return out
}
