package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParsedSample is one sample line of a Prometheus text exposition.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
	// Exemplar is the sample's OpenMetrics exemplar, if the line
	// carried one (` # {labels} value [timestamp]` after the value).
	Exemplar *ParsedExemplar
}

// ParsedExemplar is one sample's exemplar annotation.
type ParsedExemplar struct {
	Labels map[string]string
	Value  float64
}

// ParsedExposition is the outcome of parsing a text exposition.
type ParsedExposition struct {
	// Samples holds every sample line in document order.
	Samples []ParsedSample
	// Types maps family name to its declared # TYPE.
	Types map[string]string
}

// Find returns the first sample with the given name whose labels are a
// superset of want (nil matches anything), and whether one exists.
func (p *ParsedExposition) Find(name string, want map[string]string) (ParsedSample, bool) {
	for _, s := range p.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range want {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s, true
		}
	}
	return ParsedSample{}, false
}

// ParseExposition validates and parses a Prometheus text-format (0.0.4)
// exposition: # HELP / # TYPE comments, then `name{labels} value` sample
// lines. It enforces the invariants a scraper relies on — valid metric
// and label names, a known TYPE for every declared family, parseable
// values, samples of a typed family appearing after its TYPE line, and
// for histograms a _count equal to the +Inf bucket. It exists so tests
// (and the CI metrics-smoke step) can assert that what /metrics serves
// is genuinely scrapeable, not merely non-empty.
func ParseExposition(r io.Reader) (*ParsedExposition, error) {
	out := &ParsedExposition{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	infBucket := make(map[string]float64) // histogram base name -> summed +Inf buckets
	counts := make(map[string]float64)    // histogram base name -> summed _count values
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, out); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if base, isCount := strings.CutSuffix(s.Name, "_count"); isCount && out.Types[base] == "histogram" {
			counts[base] += s.Value
		}
		if base, isBucket := strings.CutSuffix(s.Name, "_bucket"); isBucket && s.Labels["le"] == "+Inf" {
			infBucket[base] += s.Value
		}
		// A sample must belong to a declared family (exact name, or a
		// histogram's generated _bucket/_sum/_count series).
		if _, ok := out.Types[s.Name]; !ok && !histogramChild(s.Name, out.Types) {
			return nil, fmt.Errorf("line %d: sample %q precedes its # TYPE declaration", lineNo, s.Name)
		}
		out.Samples = append(out.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for base, got := range counts {
		// Summed across series, _count must equal the +Inf buckets.
		if inf := infBucket[base]; got != inf {
			return nil, fmt.Errorf("histogram %s: sum of _count %v != sum of +Inf buckets %v", base, got, inf)
		}
	}
	return out, nil
}

// histogramChild reports whether name is a generated series of a
// declared histogram family.
func histogramChild(name string, types map[string]string) bool {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok && types[base] == "histogram" {
			return true
		}
	}
	return false
}

// parseComment handles # HELP and # TYPE lines (other comments pass).
func parseComment(line string, out *ParsedExposition) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validName(name) {
			return fmt.Errorf("invalid metric name %q in TYPE line", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if _, dup := out.Types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %q", name)
		}
		out.Types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		if !validName(fields[2]) {
			return fmt.Errorf("invalid metric name %q in HELP line", fields[2])
		}
	}
	return nil
}

// parseSample parses one `name{labels} value [timestamp]` line.
func parseSample(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: make(map[string]string)}
	rest := line

	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' && rest[i] != '\t' {
		i++
	}
	s.Name = rest[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[i:]

	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++ // skip the escaped byte
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}

	// Split off an OpenMetrics exemplar annotation first: everything
	// after ` # ` belongs to the exemplar, and the label set ahead of
	// the separator is already consumed, so a bare byte scan is safe.
	exemplar := ""
	if at := strings.Index(rest, " # "); at >= 0 {
		exemplar = strings.TrimSpace(rest[at+3:])
		rest = rest[:at]
	}

	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want `value [timestamp]` after name, got %q", strings.TrimSpace(rest))
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	if exemplar != "" {
		ex, err := parseExemplar(exemplar)
		if err != nil {
			return s, err
		}
		s.Exemplar = ex
	}
	return s, nil
}

// parseExemplar parses `{labels} value [timestamp]` — the annotation
// after a sample line's ` # ` separator.
func parseExemplar(body string) (*ParsedExemplar, error) {
	if !strings.HasPrefix(body, "{") {
		return nil, fmt.Errorf("exemplar must start with a label set, got %q", body)
	}
	end := -1
	inQuote := false
	for j := 1; j < len(body); j++ {
		switch {
		case inQuote && body[j] == '\\':
			j++
		case body[j] == '"':
			inQuote = !inQuote
		case !inQuote && body[j] == '}':
			end = j
		}
		if end >= 0 {
			break
		}
	}
	if end < 0 {
		return nil, fmt.Errorf("unterminated exemplar label set in %q", body)
	}
	ex := &ParsedExemplar{Labels: make(map[string]string)}
	if err := parseLabels(body[1:end], ex.Labels); err != nil {
		return nil, err
	}
	fields := strings.Fields(body[end+1:])
	if len(fields) < 1 || len(fields) > 2 {
		return nil, fmt.Errorf("want `value [timestamp]` after exemplar labels, got %q", body)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return nil, fmt.Errorf("bad exemplar value %q: %v", fields[0], err)
	}
	ex.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return nil, fmt.Errorf("bad exemplar timestamp %q", fields[1])
		}
	}
	return ex, nil
}

// parseLabels parses `k="v",k2="v2"` into dst.
func parseLabels(body string, dst map[string]string) error {
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label pair near %q", body)
		}
		key := strings.TrimSpace(body[:eq])
		if !validName(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		body = body[eq+1:]
		if !strings.HasPrefix(body, `"`) {
			return fmt.Errorf("unquoted label value for %q", key)
		}
		body = body[1:]
		var val strings.Builder
		i := 0
		for ; i < len(body); i++ {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(body[i])
				default:
					return fmt.Errorf("bad escape \\%c in label %q", body[i], key)
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i == len(body) {
			return fmt.Errorf("unterminated value for label %q", key)
		}
		dst[key] = val.String()
		body = body[i+1:]
		body = strings.TrimPrefix(body, ",")
		body = strings.TrimSpace(body)
	}
	return nil
}
