package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4): one # HELP and # TYPE line per
// family, then one sample line per series. Histograms render their
// power-of-two buckets as the standard cumulative _bucket/_sum/_count
// triple with integer `le` upper bounds (nanoseconds for latency
// series), trimmed after the highest non-empty bucket.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var lastName string
	for _, s := range r.Snapshot() {
		if s.Name != lastName {
			lastName = s.Name
			if s.Help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", s.Name, escapeHelp(s.Help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.Name, s.Kind)
		}
		switch s.Kind {
		case KindHistogram:
			writeHistogram(bw, s)
		case KindCounter:
			fmt.Fprintf(bw, "%s%s %s\n", s.Name, labelString(s.Labels, nil), formatValue(s.Value))
		default:
			fmt.Fprintf(bw, "%s%s %s\n", s.Name, labelString(s.Labels, nil), formatValue(s.Value))
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series as cumulative buckets.
// A bucket holding a trace exemplar gets the OpenMetrics exemplar
// suffix (` # {trace_id="…"} value`) on its _bucket line, linking the
// bucket to a trace resolvable via /trace/<id>.
func writeHistogram(w io.Writer, s Sample) {
	h := s.Hist
	top := 0
	for i := range h.Buckets {
		if h.Buckets[i] > 0 {
			top = i
		}
	}
	exemplars := make(map[int]Exemplar, len(h.Exemplars))
	for _, e := range h.Exemplars {
		exemplars[e.Bucket] = e
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += h.Buckets[i]
		le := strconv.FormatUint(bucketBound(i), 10)
		if e, ok := exemplars[i]; ok {
			fmt.Fprintf(w, "%s_bucket%s %d # {trace_id=\"%s\"} %d\n",
				s.Name, labelString(s.Labels, &Label{"le", le}), cum, escapeLabel(e.TraceID), e.Value)
			continue
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, labelString(s.Labels, &Label{"le", le}), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, labelString(s.Labels, &Label{"le", "+Inf"}), h.Count)
	fmt.Fprintf(w, "%s_sum%s %d\n", s.Name, labelString(s.Labels, nil), h.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", s.Name, labelString(s.Labels, nil), h.Count)
}

// labelString renders {k="v",...}, appending extra (the histogram `le`
// label) when given. Empty label sets render as nothing.
func labelString(labels []Label, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extra != nil {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extra.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float sample: integers without an exponent (the
// common counter case), everything else in Go's shortest form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// jsonMetric is one series in the JSON snapshot document.
type jsonMetric struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"`
	Count  *uint64           `json:"count,omitempty"`
	Sum    *uint64           `json:"sum,omitempty"`
	P50    *uint64           `json:"p50,omitempty"`
	P95    *uint64           `json:"p95,omitempty"`
	P99    *uint64           `json:"p99,omitempty"`
	// Exemplars lists per-bucket trace exemplars: the `le` upper bound
	// of the bucket, the trace ID last observed there, and its value.
	Exemplars []jsonExemplar `json:"exemplars,omitempty"`
}

// jsonExemplar is one bucket→trace link in the JSON snapshot.
type jsonExemplar struct {
	LE      uint64 `json:"le"`
	TraceID string `json:"trace_id"`
	Value   uint64 `json:"value"`
}

// jsonEvent is one event in the JSON snapshot document.
type jsonEvent struct {
	Time   time.Time         `json:"time"`
	Kind   string            `json:"kind"`
	Fields map[string]string `json:"fields,omitempty"`
}

// WriteJSON renders the registry (and recent events) as one JSON
// document — the machine-readable sibling of the Prometheus exposition,
// mounted by aggserve next to /metrics.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := struct {
		Metrics []jsonMetric `json:"metrics"`
		Events  []jsonEvent  `json:"events,omitempty"`
	}{}
	for _, s := range r.Snapshot() {
		m := jsonMetric{Name: s.Name, Kind: s.Kind.String()}
		if len(s.Labels) > 0 {
			m.Labels = make(map[string]string, len(s.Labels))
			for _, l := range s.Labels {
				m.Labels[l.Key] = l.Value
			}
		}
		if s.Kind == KindHistogram {
			h := s.Hist
			p50, p95, p99 := h.Percentile(50), h.Percentile(95), h.Percentile(99)
			m.Count, m.Sum, m.P50, m.P95, m.P99 = &h.Count, &h.Sum, &p50, &p95, &p99
			for _, e := range h.Exemplars {
				m.Exemplars = append(m.Exemplars, jsonExemplar{
					LE:      bucketBound(e.Bucket),
					TraceID: e.TraceID,
					Value:   e.Value,
				})
			}
		} else {
			v := s.Value
			m.Value = &v
		}
		doc.Metrics = append(doc.Metrics, m)
	}
	for _, ev := range r.Events().Events() {
		je := jsonEvent{Time: ev.Time, Kind: ev.Kind}
		if len(ev.Fields) > 0 {
			je.Fields = make(map[string]string, len(ev.Fields))
			for _, f := range ev.Fields {
				je.Fields[f.Key] = f.Value
			}
		}
		doc.Events = append(doc.Events, je)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// MetricsHandler serves the Prometheus text exposition (mount at
// /metrics).
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves the JSON snapshot (metrics plus recent events).
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}
