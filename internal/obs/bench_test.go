package obs

import (
	"testing"
	"time"
)

// The benchmarks below back the overhead numbers quoted in DESIGN.md
// §12: instrument cost on the hot path (counter add, histogram
// observe) and the cost of the nil fast path when no registry is
// configured.

func BenchmarkCounterInc(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkHistogramObserveDuration(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveDuration(time.Duration(i))
	}
}

func BenchmarkEventLogRecord(b *testing.B) {
	l := NewEventLog(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Record("bench", F("k", "v"))
	}
}

func BenchmarkRegistrySnapshot(b *testing.B) {
	r := populated()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
