package obs

import (
	"math/bits"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("Load = %d, want 5", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	g := NewGauge()
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("Load = %d, want 4", got)
	}
}

func TestNilInstrumentsNoop(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var l *EventLog
	var r *Registry
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(2)
	h.Observe(9)
	h.ObserveDuration(time.Second)
	l.Record("ev", F("k", "v"))
	l.SetSink(nil)
	l.SetClock(nil)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Percentile(99) != 0 {
		t.Fatal("nil instruments must load as zero")
	}
	if l.Events() != nil || l.Total() != 0 {
		t.Fatal("nil event log must be empty")
	}
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	r.GaugeFunc("x", "", func() float64 { return 1 })
	if r.Snapshot() != nil || r.Events() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	// One zero, then one sample per power-of-two band.
	h.Observe(0)
	h.Observe(1)   // bucket 1, bound 1
	h.Observe(2)   // bucket 2, bound 3
	h.Observe(3)   // bucket 2
	h.Observe(100) // bucket 7, bound 127
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106 {
		t.Fatalf("Sum = %d, want 106", got)
	}
	s := h.Snapshot()
	if s.Buckets[0] != 1 || s.Buckets[1] != 1 || s.Buckets[2] != 2 || s.Buckets[bits.Len64(100)] != 1 {
		t.Fatalf("unexpected bucket layout: %v", s.Buckets[:8])
	}
	if s.Count != 5 || s.Sum != 106 {
		t.Fatalf("snapshot totals = %d/%d, want 5/106", s.Count, s.Sum)
	}
}

// TestHistogramPercentileMatchesAggbench locks in the exact percentile
// math the aggbench histogram used before extraction: the reported
// value is the inclusive upper bound (2^i - 1) of the bucket holding
// the rank-th sample.
func TestHistogramPercentileMatchesAggbench(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 90; i++ {
		h.Observe(100) // bucket 7, bound 127
	}
	for i := 0; i < 10; i++ {
		h.Observe(100000) // bucket 17, bound 131071
	}
	if got := h.Percentile(50); got != 127 {
		t.Fatalf("p50 = %d, want 127", got)
	}
	if got := h.Percentile(95); got != 131071 {
		t.Fatalf("p95 = %d, want 131071", got)
	}
	if got := h.Percentile(100); got != 131071 {
		t.Fatalf("p100 = %d, want 131071", got)
	}
	if got := h.Snapshot().Percentile(50); got != 127 {
		t.Fatalf("snapshot p50 = %d, want 127", got)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram()
	h.ObserveDuration(-time.Second) // clamps to zero
	h.ObserveDuration(1500 * time.Nanosecond)
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	if h.Sum() != 1500 {
		t.Fatalf("Sum = %d, want 1500", h.Sum())
	}
}

func TestRegistryDedup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs_total", "requests")
	b := r.Counter("reqs_total", "requests")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	l1 := r.Counter("labeled_total", "", L("peer", "a"))
	l2 := r.Counter("labeled_total", "", L("peer", "b"))
	if l1 == l2 {
		t.Fatal("distinct label values must be distinct series")
	}
	// Label order must not matter.
	x := r.Gauge("multi", "", L("a", "1"), L("b", "2"))
	y := r.Gauge("multi", "", L("b", "2"), L("a", "1"))
	if x != y {
		t.Fatal("label order must not create a new series")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("thing_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("thing_total", "")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "has space", "dash-ed", "ünicode"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q must panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help c").Add(3)
	r.Gauge("g", "help g").Set(-2)
	r.Histogram("h_ns", "help h").Observe(10)
	r.GaugeFunc("gf", "help gf", func() float64 { return 1.5 })
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d samples, want 4", len(snap))
	}
	byName := map[string]Sample{}
	for _, s := range snap {
		byName[s.Name] = s
	}
	if byName["c_total"].Value != 3 || byName["c_total"].Kind != KindCounter {
		t.Fatalf("counter sample wrong: %+v", byName["c_total"])
	}
	if byName["g"].Value != -2 {
		t.Fatalf("gauge sample wrong: %+v", byName["g"])
	}
	if byName["gf"].Value != 1.5 {
		t.Fatalf("gauge-func sample wrong: %+v", byName["gf"])
	}
	if h := byName["h_ns"].Hist; h == nil || h.Count != 1 || h.Sum != 10 {
		t.Fatalf("histogram sample wrong: %+v", byName["h_ns"].Hist)
	}
}

// TestRegistryConcurrent hammers registration, updates, and snapshots
// from many goroutines; run with -race to validate the locking.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			peer := []string{"a", "b", "c"}[g%3]
			for i := 0; i < 500; i++ {
				r.Counter("conc_total", "", L("peer", peer)).Inc()
				r.Histogram("conc_lat_ns", "").Observe(uint64(i))
				r.GaugeFunc("conc_fn", "", func() float64 { return float64(i) })
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	var total float64
	for _, s := range r.Snapshot() {
		if s.Name == "conc_total" {
			total += s.Value
		}
	}
	if total != 8*500 {
		t.Fatalf("counter total = %v, want %d", total, 8*500)
	}
}

func TestBucketBound(t *testing.T) {
	cases := map[int]uint64{0: 0, 1: 1, 2: 3, 7: 127, 64: 1<<64 - 1, 70: 1<<64 - 1}
	for i, want := range cases {
		if got := bucketBound(i); got != want {
			t.Fatalf("bucketBound(%d) = %d, want %d", i, got, want)
		}
	}
}
