package obs

import (
	"log/slog"
	"sync"
	"time"
)

// defaultEventCapacity bounds the event ring when NewEventLog is given a
// non-positive capacity.
const defaultEventCapacity = 256

// Field is one key=value attribute of an event.
type Field struct {
	Key   string
	Value string
}

// F is shorthand for constructing a Field.
func F(key, value string) Field { return Field{Key: key, Value: value} }

// Event is one structured occurrence worth keeping: a slow request, a
// breaker transition, a reconnect, a downgrade, a degraded-mode hit.
type Event struct {
	Time   time.Time
	Kind   string
	Fields []Field
}

// EventLog is a bounded ring of structured events. Recording is cheap
// (one short critical section, one slice allocation for the fields) and
// the ring overwrites oldest-first, so a misbehaving component can cost
// memory proportional only to the capacity. An optional log/slog sink
// mirrors every event to ordinary logging for operators who want a
// stream rather than a buffer. A nil *EventLog no-ops.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	next  int // next write position
	full  bool
	total uint64
	sink  *slog.Logger
	now   func() time.Time
}

// NewEventLog returns an event log holding up to capacity events
// (capacity <= 0 selects the default of 256).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = defaultEventCapacity
	}
	return &EventLog{buf: make([]Event, capacity), now: time.Now}
}

// SetSink mirrors every subsequent event to s (nil disables mirroring).
func (l *EventLog) SetSink(s *slog.Logger) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sink = s
	l.mu.Unlock()
}

// SetClock substitutes the timestamp source; tests use a fake clock so
// recorded times are deterministic. nil restores time.Now.
func (l *EventLog) SetClock(now func() time.Time) {
	if l == nil {
		return
	}
	if now == nil {
		now = time.Now
	}
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

// Record appends one event, overwriting the oldest when full.
func (l *EventLog) Record(kind string, fields ...Field) {
	if l == nil {
		return
	}
	l.mu.Lock()
	ev := Event{Time: l.now(), Kind: kind, Fields: fields}
	l.buf[l.next] = ev
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
	l.total++
	sink := l.sink
	l.mu.Unlock()

	if sink != nil {
		attrs := make([]any, 0, 2*len(fields))
		for _, f := range fields {
			attrs = append(attrs, slog.String(f.Key, f.Value))
		}
		sink.Info(kind, attrs...)
	}
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	if l.full {
		out = make([]Event, 0, len(l.buf))
		out = append(out, l.buf[l.next:]...)
		out = append(out, l.buf[:l.next]...)
	} else {
		out = make([]Event, l.next)
		copy(out, l.buf[:l.next])
	}
	return out
}

// Total returns how many events were ever recorded (including those the
// ring has since overwritten).
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
