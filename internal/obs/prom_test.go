package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// populated returns a registry exercising every metric kind.
func populated() *Registry {
	r := NewRegistry()
	r.Counter("srv_requests_total", "open requests served").Add(12)
	r.Counter("srv_errors_total", "request errors").Add(1)
	r.Gauge("srv_inflight", "in-flight requests").Set(3)
	r.GaugeFunc("srv_conns", "open connections", func() float64 { return 2 })
	h := r.Histogram("srv_latency_ns", "request latency", L("phase", "hit"))
	h.Observe(100)
	h.Observe(100)
	h.Observe(100000)
	r.Histogram("srv_latency_ns", "request latency", L("phase", "stage")).Observe(7)
	r.Counter("peer_state", "breaker state", L("peer", `weird"addr\n`)).Add(1)
	return r
}

// TestPrometheusRoundTrip is the exposition-format validation the CI
// metrics-smoke step relies on: what WritePrometheus emits must parse
// cleanly under the package's own strict parser.
func TestPrometheusRoundTrip(t *testing.T) {
	r := populated()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	parsed, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}

	if s, ok := parsed.Find("srv_requests_total", nil); !ok || s.Value != 12 {
		t.Fatalf("srv_requests_total = %+v, %v", s, ok)
	}
	if parsed.Types["srv_requests_total"] != "counter" {
		t.Fatalf("srv_requests_total type = %q", parsed.Types["srv_requests_total"])
	}
	if s, ok := parsed.Find("srv_inflight", nil); !ok || s.Value != 3 {
		t.Fatalf("srv_inflight = %+v, %v", s, ok)
	}
	if parsed.Types["srv_inflight"] != "gauge" {
		t.Fatalf("srv_inflight type = %q", parsed.Types["srv_inflight"])
	}
	if s, ok := parsed.Find("srv_conns", nil); !ok || s.Value != 2 {
		t.Fatalf("srv_conns (gauge func) = %+v, %v", s, ok)
	}

	// Histogram: per-phase series, cumulative buckets, exact bounds.
	if parsed.Types["srv_latency_ns"] != "histogram" {
		t.Fatalf("srv_latency_ns type = %q", parsed.Types["srv_latency_ns"])
	}
	hit := map[string]string{"phase": "hit"}
	if s, ok := parsed.Find("srv_latency_ns_count", hit); !ok || s.Value != 3 {
		t.Fatalf("hit _count = %+v, %v", s, ok)
	}
	if s, ok := parsed.Find("srv_latency_ns_sum", hit); !ok || s.Value != 100200 {
		t.Fatalf("hit _sum = %+v, %v", s, ok)
	}
	// 100 lands in the bucket with bound 127; cumulative at le=127 is 2.
	if s, ok := parsed.Find("srv_latency_ns_bucket", map[string]string{"phase": "hit", "le": "127"}); !ok || s.Value != 2 {
		t.Fatalf("hit le=127 bucket = %+v, %v", s, ok)
	}
	if s, ok := parsed.Find("srv_latency_ns_bucket", map[string]string{"phase": "hit", "le": "+Inf"}); !ok || s.Value != 3 {
		t.Fatalf("hit +Inf bucket = %+v, %v", s, ok)
	}
	if s, ok := parsed.Find("srv_latency_ns_count", map[string]string{"phase": "stage"}); !ok || s.Value != 1 {
		t.Fatalf("stage _count = %+v, %v", s, ok)
	}

	// Label escaping survives the round trip.
	if s, ok := parsed.Find("peer_state", map[string]string{"peer": `weird"addr\n`}); !ok || s.Value != 1 {
		t.Fatalf("escaped label lost: %+v, %v", s, ok)
	}
}

func TestPrometheusBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "")
	for i := 0; i < 10; i++ {
		h.Observe(uint64(1) << uint(i)) // one sample per bucket 1..10
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = -1
	n := 0
	for _, s := range parsed.Samples {
		if s.Name != "lat_ns_bucket" {
			continue
		}
		if s.Value < prev {
			t.Fatalf("buckets not cumulative: %v after %v", s.Value, prev)
		}
		prev = s.Value
		n++
	}
	if n < 2 {
		t.Fatalf("only %d bucket lines emitted", n)
	}
	if prev != 10 {
		t.Fatalf("final cumulative bucket = %v, want 10", prev)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := populated()
	rec := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	// The exact content type matters: Prometheus content negotiation keys
	// on version and charset, so lock the whole string, not a prefix.
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if _, err := ParseExposition(rec.Body); err != nil {
		t.Fatalf("handler output does not parse: %v", err)
	}
}

// TestPrometheusExemplarRoundTrip locks the bucket→trace link end to
// end: an ObserveTrace sample must surface as an OpenMetrics exemplar
// on its _bucket line, survive the package's own strict parser, and
// carry the trace ID and raw value back out.
func TestPrometheusExemplarRoundTrip(t *testing.T) {
	const traceID = "00000000000000990000000000000aa0"
	r := NewRegistry()
	h := r.Histogram("req_latency_ns", "request latency")
	h.Observe(50)           // untraced sample, same bucket range
	h.ObserveTrace(100, "") // empty trace ID must not pin an exemplar
	h.ObserveTrace(100, traceID)
	h.ObserveTrace(100000, traceID)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `# {trace_id="`+traceID+`"} 100`) {
		t.Fatalf("exposition missing exemplar annotation:\n%s", text)
	}
	parsed, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition with exemplars does not parse: %v\n%s", err, text)
	}
	// 100 lands in the bucket bounded at 127: that line carries the
	// exemplar; the untraced sample's bucket annotations stay clean.
	s, ok := parsed.Find("req_latency_ns_bucket", map[string]string{"le": "127"})
	if !ok {
		t.Fatalf("le=127 bucket missing")
	}
	if s.Exemplar == nil {
		t.Fatalf("le=127 bucket lost its exemplar: %+v", s)
	}
	if got := s.Exemplar.Labels["trace_id"]; got != traceID {
		t.Fatalf("exemplar trace_id = %q, want %q", got, traceID)
	}
	if s.Exemplar.Value != 100 {
		t.Fatalf("exemplar value = %v, want 100", s.Exemplar.Value)
	}
	if s, ok := parsed.Find("req_latency_ns_bucket", map[string]string{"le": "63"}); !ok || s.Exemplar != nil {
		t.Fatalf("le=63 bucket should have no exemplar: %+v, %v", s, ok)
	}

	// The same exemplar must surface in the JSON snapshot.
	snap := h.Snapshot()
	var found bool
	for _, e := range snap.Exemplars {
		if e.TraceID == traceID && e.Value == 100 {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapshot exemplars missing traced sample: %+v", snap.Exemplars)
	}
}

func TestJSONHandler(t *testing.T) {
	r := populated()
	r.Events().Record("reconnect", F("addr", "x"))
	rec := httptest.NewRecorder()
	r.JSONHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var doc struct {
		Metrics []struct {
			Name   string            `json:"name"`
			Kind   string            `json:"kind"`
			Labels map[string]string `json:"labels"`
			Value  *float64          `json:"value"`
			Count  *uint64           `json:"count"`
			P95    *uint64           `json:"p95"`
		} `json:"metrics"`
		Events []struct {
			Kind   string            `json:"kind"`
			Fields map[string]string `json:"fields"`
		} `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	found := map[string]bool{}
	for _, m := range doc.Metrics {
		found[m.Name] = true
		if m.Name == "srv_latency_ns" && m.Labels["phase"] == "hit" {
			if m.Count == nil || *m.Count != 3 || m.P95 == nil || *m.P95 != 131071 {
				t.Fatalf("histogram JSON wrong: %+v", m)
			}
		}
		if m.Name == "srv_requests_total" && (m.Value == nil || *m.Value != 12) {
			t.Fatalf("counter JSON wrong: %+v", m)
		}
	}
	for _, want := range []string{"srv_requests_total", "srv_inflight", "srv_conns", "srv_latency_ns"} {
		if !found[want] {
			t.Fatalf("JSON missing metric %s", want)
		}
	}
	if len(doc.Events) != 1 || doc.Events[0].Kind != "reconnect" || doc.Events[0].Fields["addr"] != "x" {
		t.Fatalf("events JSON wrong: %+v", doc.Events)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"undeclared sample":  "foo_total 3\n",
		"bad type":           "# TYPE x widget\nx 1\n",
		"bad value":          "# TYPE x counter\nx pancake\n",
		"bad name":           "# TYPE 9x counter\n9x 1\n",
		"unterminated label": "# TYPE x counter\nx{a=\"b 1\n",
		"unquoted label":     "# TYPE x counter\nx{a=b} 1\n",
		"dup type":           "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"count mismatch":     "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 3\n",
	}
	for name, text := range cases {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Fatalf("%s: parse accepted %q", name, text)
		}
	}
}

func TestParseExpositionAcceptsTimestamps(t *testing.T) {
	text := "# TYPE x counter\nx{a=\"b\"} 4 1712345678\n"
	p, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := p.Find("x", map[string]string{"a": "b"}); !ok || s.Value != 4 {
		t.Fatalf("sample = %+v, %v", s, ok)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{0: "0", 12: "12", -3: "-3", 1.5: "1.5"}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Fatalf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
}
