// Package aggcache is a Go implementation of group-based management of
// distributed file caches, after Amer, Long and Burns (ICDCS 2002).
//
// The core idea: observe only the sequence of file-open events, keep for
// every file a small LRU-managed list of its immediate successors, and on
// a cache miss fetch a best-effort group — the demanded file plus the
// chain of most-likely transitive successors — instead of a single file.
// The demanded file enters at the head of the cache's LRU list; the
// speculative members are appended at the tail, so wrong guesses are the
// first victims. This "aggregating cache" delivers the benefit of
// prefetching without its timing hazards, and it keeps a server-side cache
// useful even when an intervening client cache filters away all ordinary
// locality.
//
// The package is a facade over the implementation packages:
//
//   - New / Cache: the aggregating cache itself (client- or server-side).
//   - Trace, ReadTraceText, ReadTraceBinary, ...: the file-access trace
//     substrate, with text and binary codecs.
//   - GenerateWorkload / StandardWorkload: synthetic workloads calibrated
//     to the four CMU DFSTrace systems the paper evaluates.
//   - NewTracker / EvaluateSuccessorPolicy: per-file successor metadata
//     and the replacement-policy study.
//   - SuccessorEntropy: the paper's predictability metric.
//   - SimulateClient / SimulateServer / FilterLRU: trace-driven cache
//     simulations for every figure of the evaluation.
//   - NewStore / NewServer / Dial: a TCP file server and client cache
//     manager realizing the paper's architecture over a real network.
//
// Use the quickstart example as a template:
//
//	tr, _ := aggcache.StandardWorkload(aggcache.ProfileServer, 1, 50000)
//	c, _ := aggcache.New(aggcache.Config{Capacity: 300, GroupSize: 5})
//	for _, id := range tr.OpenIDs() {
//		c.Access(id)
//	}
//	fmt.Println(c.Stats().DemandFetches())
package aggcache

import (
	"io"

	"aggcache/internal/cache"
	"aggcache/internal/core"
	"aggcache/internal/entropy"
	"aggcache/internal/fsnet"
	"aggcache/internal/group"
	"aggcache/internal/simulate"
	"aggcache/internal/successor"
	"aggcache/internal/trace"
	"aggcache/internal/workload"
)

// Aggregating cache (the paper's contribution).
type (
	// Cache is the aggregating cache of §3.
	Cache = core.AggregatingCache
	// Config parameterizes a Cache.
	Config = core.Config
	// CacheStats is the aggregating cache's accounting.
	CacheStats = core.Stats
	// Placement selects where speculative group members enter the LRU
	// list.
	Placement = core.Placement
)

// Group-member placements.
const (
	// PlacementTail appends members at the LRU tail (the paper's
	// design).
	PlacementTail = core.PlacementTail
	// PlacementHead inserts members at the head (ablation variant).
	PlacementHead = core.PlacementHead
)

// New builds an aggregating cache.
func New(cfg Config) (*Cache, error) { return core.New(cfg) }

// Group construction.
type (
	// GroupBuilder assembles retrieval groups from successor metadata.
	GroupBuilder = group.Builder
	// GroupStrategy selects chaining vs breadth-first construction.
	GroupStrategy = group.Strategy
	// Cover is an overlapping covering-set grouping (§2.1).
	Cover = group.Cover
)

// Group construction strategies.
const (
	// StrategyChain follows most-likely transitive successors (paper).
	StrategyChain = group.StrategyChain
	// StrategyBreadth takes ranked successors breadth-first (ablation).
	StrategyBreadth = group.StrategyBreadth
)

// NewGroupBuilder returns a builder over t's metadata.
func NewGroupBuilder(t *Tracker, size int, strategy GroupStrategy) (*GroupBuilder, error) {
	return group.NewBuilder(t, size, strategy)
}

// BuildCover computes an overlapping covering-set grouping of the files.
func BuildCover(t *Tracker, b *GroupBuilder, files []FileID) *Cover {
	return group.BuildCover(t, b, files)
}

// Traces.
type (
	// Trace is an in-memory file-access trace.
	Trace = trace.Trace
	// Event is one trace record.
	Event = trace.Event
	// FileID is a dense interned file identity.
	FileID = trace.FileID
	// Op is a trace operation kind.
	Op = trace.Op
	// TraceStats summarizes a trace.
	TraceStats = trace.Stats
	// Interner maps paths to FileIDs.
	Interner = trace.Interner
)

// Trace operations.
const (
	OpOpen   = trace.OpOpen
	OpClose  = trace.OpClose
	OpRead   = trace.OpRead
	OpWrite  = trace.OpWrite
	OpCreate = trace.OpCreate
	OpUnlink = trace.OpUnlink
	OpStat   = trace.OpStat
)

// NewTrace returns an empty trace.
func NewTrace() *Trace { return trace.NewTrace() }

// ReadTraceText decodes the line-oriented trace format.
func ReadTraceText(r io.Reader) (*Trace, error) { return trace.ReadText(r) }

// WriteTraceText encodes a trace in the line-oriented format.
func WriteTraceText(w io.Writer, t *Trace) error { return trace.WriteText(w, t) }

// ReadTraceBinary decodes the compact binary trace format.
func ReadTraceBinary(r io.Reader) (*Trace, error) { return trace.ReadBinary(r) }

// WriteTraceBinary encodes a trace in the compact binary format.
func WriteTraceBinary(w io.Writer, t *Trace) error { return trace.WriteBinary(w, t) }

// SummarizeTrace computes summary statistics over a trace.
func SummarizeTrace(t *Trace) TraceStats { return trace.Summarize(t) }

// Workloads.
type (
	// WorkloadProfile names one of the four calibrated workloads.
	WorkloadProfile = workload.Profile
	// WorkloadConfig parameterizes synthetic trace generation.
	WorkloadConfig = workload.Config
)

// The four workloads of the paper's evaluation.
const (
	ProfileWorkstation = workload.ProfileWorkstation
	ProfileUsers       = workload.ProfileUsers
	ProfileWrite       = workload.ProfileWrite
	ProfileServer      = workload.ProfileServer
)

// WorkloadProfiles lists the standard profiles.
func WorkloadProfiles() []WorkloadProfile { return workload.Profiles() }

// GenerateWorkload synthesizes a trace from an explicit configuration.
func GenerateWorkload(cfg WorkloadConfig) (*Trace, error) { return workload.Generate(cfg) }

// StandardWorkload synthesizes the calibrated trace for a profile — the
// library's stand-in for loading the corresponding CMU trace.
func StandardWorkload(p WorkloadProfile, seed int64, opens int) (*Trace, error) {
	return workload.Standard(p, seed, opens)
}

// Successor metadata.
type (
	// Tracker maintains per-file successor lists over a sequence.
	Tracker = successor.Tracker
	// SuccessorPolicy selects list replacement (LRU, LFU, Oracle).
	SuccessorPolicy = successor.Policy
	// SuccessorEval is the Figure-5 replacement-policy measurement.
	SuccessorEval = successor.ReplacementEval
	// Graph is the inter-file relationship graph.
	Graph = successor.Graph
)

// Successor-list replacement policies.
const (
	SuccessorLRU = successor.PolicyLRU
	SuccessorLFU = successor.PolicyLFU
	// SuccessorDecay ranks successors by exponentially decayed
	// frequency, the recency/frequency hybrid of the paper's §6.
	SuccessorDecay  = successor.PolicyDecay
	SuccessorOracle = successor.PolicyOracle
)

// NewTracker builds a successor tracker with the given list policy and
// capacity.
func NewTracker(policy SuccessorPolicy, capacity int) (*Tracker, error) {
	return successor.NewTracker(policy, capacity)
}

// NewDecayTracker builds a tracker whose lists use decayed frequency with
// an explicit decay factor in (0, 1].
func NewDecayTracker(capacity int, lambda float64) (*Tracker, error) {
	return successor.NewDecayTracker(capacity, lambda)
}

// EvaluateSuccessorPolicy measures how often a bounded successor list
// fails to retain the actual next file (Figure 5).
func EvaluateSuccessorPolicy(seq []FileID, policy SuccessorPolicy, capacity int) (SuccessorEval, error) {
	return successor.EvaluateReplacement(seq, policy, capacity)
}

// BuildGraph snapshots a tracker's metadata as a relationship graph.
func BuildGraph(t *Tracker) *Graph { return successor.BuildGraph(t) }

// Entropy.

// EntropyResult carries a successor-entropy computation.
type EntropyResult = entropy.Result

// SuccessorEntropy computes the paper's predictability metric (Equation 2)
// for successor symbols of length k.
func SuccessorEntropy(seq []FileID, k int) (EntropyResult, error) {
	return entropy.SuccessorEntropy(seq, k)
}

// EntropySweep computes SuccessorEntropy for each symbol length.
func EntropySweep(seq []FileID, ks []int) ([]EntropyResult, error) {
	return entropy.Sweep(seq, ks)
}

// ConditionalEntropy generalizes the metric to higher-order conditioning:
// the condition is the last ctxLen files (ctxLen 1 reproduces Equation 2).
func ConditionalEntropy(seq []FileID, ctxLen, symbolLen int) (EntropyResult, error) {
	return entropy.ConditionalEntropy(seq, ctxLen, symbolLen)
}

// Simulation.
type (
	// ClientSimResult is one Figure-3 cell.
	ClientSimResult = simulate.ClientResult
	// ServerSimConfig parameterizes a two-level Figure-4 run.
	ServerSimConfig = simulate.ServerConfig
	// ServerSimResult is one Figure-4 cell.
	ServerSimResult = simulate.ServerResult
	// ServerScheme selects the server cache policy.
	ServerScheme = simulate.Scheme
)

// Server cache schemes for SimulateServer.
const (
	ServerLRU         = simulate.SchemeLRU
	ServerLFU         = simulate.SchemeLFU
	ServerAggregating = simulate.SchemeAggregating
)

// SimulateClient runs an aggregating client cache over an open sequence.
func SimulateClient(ids []FileID, capacity, groupSize int) (ClientSimResult, error) {
	return simulate.RunClient(ids, capacity, groupSize)
}

// SimulateServer runs the two-level client-filter/server-cache scenario.
func SimulateServer(ids []FileID, cfg ServerSimConfig) (ServerSimResult, error) {
	return simulate.RunServer(ids, cfg)
}

// MultiServerSimResult is the outcome of a multi-client two-level run.
type MultiServerSimResult = simulate.MultiServerResult

// SimulateServerMulti runs the two-level scenario with one client cache
// per client id and per-client server metadata contexts (§2.2).
func SimulateServerMulti(events []Event, cfg ServerSimConfig) (MultiServerSimResult, error) {
	return simulate.RunServerMulti(events, cfg)
}

// FilterLRU returns the miss stream of an LRU cache over the sequence.
func FilterLRU(ids []FileID, capacity int) ([]FileID, error) {
	return simulate.FilterLRU(ids, capacity)
}

// Baseline caches.
type (
	// BaselineCache is the uniform interface over LRU, LFU, CLOCK and
	// MQ whole-file cache simulators.
	BaselineCache = cache.Cache
	// BaselinePolicy names a baseline replacement policy.
	BaselinePolicy = cache.Policy
	// BaselineStats counts baseline cache activity.
	BaselineStats = cache.Stats
)

// Baseline replacement policies.
const (
	BaselineLRU   = cache.PolicyLRU
	BaselineLFU   = cache.PolicyLFU
	BaselineCLOCK = cache.PolicyCLOCK
	BaselineMQ    = cache.PolicyMQ
	BaselineARC   = cache.PolicyARC
	BaselineTwoQ  = cache.PolicyTwoQ
)

// NewBaseline constructs a baseline cache simulator.
func NewBaseline(p BaselinePolicy, capacity int) (BaselineCache, error) {
	return cache.New(p, capacity)
}

// Networked deployment (the paper's Figure-2 architecture over TCP).
type (
	// Server is the remote file server with relationship metadata.
	Server = fsnet.Server
	// ServerConfig parameterizes a Server.
	ServerConfig = fsnet.ServerConfig
	// ServerStats snapshots server activity.
	ServerStats = fsnet.ServerStats
	// Client is the client-side cache manager.
	Client = fsnet.Client
	// ClientConfig parameterizes a Client.
	ClientConfig = fsnet.ClientConfig
	// ClientStats snapshots client activity.
	ClientStats = fsnet.ClientStats
	// Store is the server's backing file store.
	Store = fsnet.Store
	// Backoff shapes the client's redial/retry delay schedule.
	Backoff = fsnet.Backoff
)

// ErrNotFound is returned by Client.Open for missing files.
var ErrNotFound = fsnet.ErrNotFound

// ErrConnBroken marks a client connection poisoned by an I/O or protocol
// error; with a Dialer configured the client redials with exponential
// backoff, and cache hits keep being served in the meantime.
var ErrConnBroken = fsnet.ErrConnBroken

// NewStore returns an empty file store.
func NewStore() *Store { return fsnet.NewStore() }

// NewServer builds a file server over a store.
func NewServer(store *Store, cfg ServerConfig) (*Server, error) {
	return fsnet.NewServer(store, cfg)
}

// Dial connects a client cache manager to a server.
func Dial(addr string, cfg ClientConfig) (*Client, error) { return fsnet.Dial(addr, cfg) }
