// Servercache reproduces the paper's §4.3 story: an NFS-like server cache
// sits behind the clients' own caches, so it only ever sees client
// *misses*. As the client caches grow toward the server's capacity,
// ordinary LRU/LFU server caching collapses — all reusable locality was
// absorbed upstream — while the aggregating cache keeps working, because
// inter-file relationships survive the filtering.
package main

import (
	"fmt"
	"os"

	"aggcache"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servercache:", err)
		os.Exit(1)
	}
}

func run() error {
	tr, err := aggcache.StandardWorkload(aggcache.ProfileWorkstation, 1, 60000)
	if err != nil {
		return err
	}
	ids := tr.OpenIDs()

	const serverCap = 300
	fmt.Printf("server cache capacity: %d files; workload: %d opens\n\n", serverCap, len(ids))
	fmt.Printf("%-24s %10s %10s %10s\n", "client cache (filter)", "g5", "lru", "lfu")

	for _, filter := range []int{50, 100, 200, 300, 400, 500} {
		row := make([]float64, 0, 3)
		for _, scheme := range []aggcache.ServerScheme{
			aggcache.ServerAggregating, aggcache.ServerLRU, aggcache.ServerLFU,
		} {
			r, err := aggcache.SimulateServer(ids, aggcache.ServerSimConfig{
				FilterCapacity: filter,
				ServerCapacity: serverCap,
				Scheme:         scheme,
				GroupSize:      5,
			})
			if err != nil {
				return err
			}
			row = append(row, 100*r.HitRate)
		}
		marker := ""
		if filter >= serverCap {
			marker = "  <- filter >= server cache"
		}
		fmt.Printf("%-24d %9.1f%% %9.1f%% %9.1f%%%s\n", filter, row[0], row[1], row[2], marker)
	}

	fmt.Println("\nonce the intervening cache reaches the server's capacity, LRU and LFU")
	fmt.Println("become ineffective while grouping sustains a solid hit rate (Figure 4).")
	return nil
}
