// Netgroup runs the paper's Figure-2 architecture for real: a group-
// retrieval file server on a loopback TCP socket and a client cache
// manager that opens files through it. A build-like task workload teaches
// the server its inter-file relationships; the numbers show how group
// replies turn round trips into local cache hits — and how a second,
// completely cold client benefits immediately from what the server
// learned.
//
// The final act kills the server mid-session and restarts it on the same
// address: the hardened client keeps serving cache hits while the server
// is down (degraded mode) and transparently redials with backoff on the
// next miss, visible in ClientStats.Reconnects.
package main

import (
	"errors"
	"fmt"
	"net"
	"os"
	"time"

	"aggcache"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netgroup:", err)
		os.Exit(1)
	}
}

// tasks are small deterministic file sequences, like script runs.
func tasks() [][]string {
	build := []string{"/bin/make", "/src/Makefile", "/src/main.c", "/src/util.c", "/src/util.h", "/obj/main.o"}
	script := []string{"/bin/sh", "/etc/profile", "/home/u/.rc", "/usr/lib/libc.so"}
	edit := []string{"/bin/vi", "/home/u/notes.txt", "/home/u/.viminfo"}
	return [][]string{build, script, edit}
}

func run() error {
	store := aggcache.NewStore()
	for _, task := range tasks() {
		for _, p := range task {
			if err := store.Put(p, []byte("contents of "+p)); err != nil {
				return err
			}
		}
	}

	srv, err := aggcache.NewServer(store, aggcache.ServerConfig{GroupSize: 4, CacheCapacity: 64})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()
	fmt.Printf("server listening on %s (g=4)\n\n", l.Addr())

	// A "developer" client cycles through the tasks; its access history
	// is piggybacked to the server, which learns each task's chain.
	dev, err := aggcache.Dial(l.Addr().String(), aggcache.ClientConfig{CacheCapacity: 6})
	if err != nil {
		return err
	}
	defer dev.Close()
	for round := 0; round < 8; round++ {
		for _, task := range tasks() {
			for _, p := range task {
				if _, err := dev.Open(p); err != nil {
					return err
				}
			}
		}
	}
	ds := dev.Stats()
	fmt.Printf("developer client: %d opens, %d served locally (%.1f%%), %d server round trips\n",
		ds.Opens, ds.Hits, 100*float64(ds.Hits)/float64(ds.Opens), ds.Fetches)
	fmt.Printf("                  %d files / %d bytes received, %d prefetch hits\n\n",
		ds.FilesReceived, ds.BytesReceived, ds.PrefetchHits)

	// A brand-new client with a cold cache runs one build. Thanks to the
	// server's learned groups, one round trip fetches most of the task.
	fresh, err := aggcache.Dial(l.Addr().String(), aggcache.ClientConfig{CacheCapacity: 16})
	if err != nil {
		return err
	}
	defer fresh.Close()
	for _, p := range tasks()[0] {
		if _, err := fresh.Open(p); err != nil {
			return err
		}
	}
	fs := fresh.Stats()
	fmt.Printf("cold client build: %d opens -> only %d server round trips (%d prefetch hits)\n",
		fs.Opens, fs.Fetches, fs.PrefetchHits)

	st := srv.Stats()
	fmt.Printf("\nserver: %d requests, %d files sent, memory cache %s\n",
		st.Requests, st.FilesSent, st.Cache.String())

	return faultTolerance(store, l.Addr().String(), srv)
}

// faultTolerance restarts the server under a live hardened client: cache
// hits survive the outage, the first miss during the outage fails with
// ErrConnBroken, and after the restart the client redials transparently.
func faultTolerance(store *aggcache.Store, addr string, srv *aggcache.Server) error {
	fmt.Println("\n--- fault tolerance: full server restart under a live client ---")
	tough, err := aggcache.Dial(addr, aggcache.ClientConfig{
		CacheCapacity: 16,
		Timeout:       2 * time.Second,
		MaxRetries:    8,
		Backoff:       aggcache.Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond},
	})
	if err != nil {
		return err
	}
	defer tough.Close()

	// Warm the client with one build task.
	for _, p := range tasks()[0] {
		if _, err := tough.Open(p); err != nil {
			return err
		}
	}

	// Stop the server entirely.
	if err := srv.Close(); err != nil {
		return err
	}
	fmt.Println("server stopped")

	// A miss during the outage fails fast with a typed error (and marks
	// the connection broken); cached files stay readable regardless.
	if _, err := tough.Open("/home/u/notes.txt"); err != nil && !errors.Is(err, aggcache.ErrConnBroken) {
		return fmt.Errorf("miss during outage: unexpected error: %w", err)
	}
	if _, err := tough.Open("/src/main.c"); err != nil {
		return fmt.Errorf("degraded hit failed: %w", err)
	}
	ds := tough.Stats()
	fmt.Printf("during outage: cache hits keep working (%d degraded hits), misses fail fast\n", ds.DegradedHits)

	// Restart on the same address; the client's next miss redials.
	srv2, err := aggcache.NewServer(store, aggcache.ServerConfig{GroupSize: 4, CacheCapacity: 64})
	if err != nil {
		return err
	}
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	go func() { _ = srv2.Serve(l2) }()
	defer srv2.Close()

	for _, task := range tasks() {
		for _, p := range task {
			if _, err := tough.Open(p); err != nil {
				return fmt.Errorf("post-restart open %s: %w", p, err)
			}
		}
	}
	ds = tough.Stats()
	fmt.Printf("after restart: all opens succeed again; reconnects=%d retries=%d broken conns=%d\n",
		ds.Reconnects, ds.Retries, ds.BrokenConns)
	return nil
}
