// Netgroup runs the paper's Figure-2 architecture for real: a group-
// retrieval file server on a loopback TCP socket and a client cache
// manager that opens files through it. A build-like task workload teaches
// the server its inter-file relationships; the numbers show how group
// replies turn round trips into local cache hits — and how a second,
// completely cold client benefits immediately from what the server
// learned.
package main

import (
	"fmt"
	"net"
	"os"

	"aggcache"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netgroup:", err)
		os.Exit(1)
	}
}

// tasks are small deterministic file sequences, like script runs.
func tasks() [][]string {
	build := []string{"/bin/make", "/src/Makefile", "/src/main.c", "/src/util.c", "/src/util.h", "/obj/main.o"}
	script := []string{"/bin/sh", "/etc/profile", "/home/u/.rc", "/usr/lib/libc.so"}
	edit := []string{"/bin/vi", "/home/u/notes.txt", "/home/u/.viminfo"}
	return [][]string{build, script, edit}
}

func run() error {
	store := aggcache.NewStore()
	for _, task := range tasks() {
		for _, p := range task {
			if err := store.Put(p, []byte("contents of "+p)); err != nil {
				return err
			}
		}
	}

	srv, err := aggcache.NewServer(store, aggcache.ServerConfig{GroupSize: 4, CacheCapacity: 64})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()
	fmt.Printf("server listening on %s (g=4)\n\n", l.Addr())

	// A "developer" client cycles through the tasks; its access history
	// is piggybacked to the server, which learns each task's chain.
	dev, err := aggcache.Dial(l.Addr().String(), aggcache.ClientConfig{CacheCapacity: 6})
	if err != nil {
		return err
	}
	defer dev.Close()
	for round := 0; round < 8; round++ {
		for _, task := range tasks() {
			for _, p := range task {
				if _, err := dev.Open(p); err != nil {
					return err
				}
			}
		}
	}
	ds := dev.Stats()
	fmt.Printf("developer client: %d opens, %d served locally (%.1f%%), %d server round trips\n",
		ds.Opens, ds.Hits, 100*float64(ds.Hits)/float64(ds.Opens), ds.Fetches)
	fmt.Printf("                  %d files / %d bytes received, %d prefetch hits\n\n",
		ds.FilesReceived, ds.BytesReceived, ds.PrefetchHits)

	// A brand-new client with a cold cache runs one build. Thanks to the
	// server's learned groups, one round trip fetches most of the task.
	fresh, err := aggcache.Dial(l.Addr().String(), aggcache.ClientConfig{CacheCapacity: 16})
	if err != nil {
		return err
	}
	defer fresh.Close()
	for _, p := range tasks()[0] {
		if _, err := fresh.Open(p); err != nil {
			return err
		}
	}
	fs := fresh.Stats()
	fmt.Printf("cold client build: %d opens -> only %d server round trips (%d prefetch hits)\n",
		fs.Opens, fs.Fetches, fs.PrefetchHits)

	st := srv.Stats()
	fmt.Printf("\nserver: %d requests, %d files sent, memory cache %s\n",
		st.Requests, st.FilesSent, st.Cache.String())
	return nil
}
