// Predictability walks through the paper's §4.4-§4.5 analysis on the four
// calibrated workloads: successor entropy as a function of the successor-
// sequence symbol length (Figure 7), the effect of intervening LRU caches
// on the predictability of what a server sees (Figure 8), and the
// recency-vs-frequency comparison for per-file successor lists (Figure 5).
package main

import (
	"fmt"
	"os"

	"aggcache"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "predictability:", err)
		os.Exit(1)
	}
}

func run() error {
	const opens = 50000
	workloads := aggcache.WorkloadProfiles()
	sequences := make(map[aggcache.WorkloadProfile][]aggcache.FileID, len(workloads))
	for _, p := range workloads {
		tr, err := aggcache.StandardWorkload(p, 1, opens)
		if err != nil {
			return err
		}
		sequences[p] = tr.OpenIDs()
	}

	// Figure 7: single-file successors are the most predictable symbol.
	fmt.Println("successor entropy (bits) by symbol length — lower is more predictable:")
	fmt.Printf("%-13s", "workload")
	lengths := []int{1, 2, 4, 8, 16}
	for _, k := range lengths {
		fmt.Printf("  k=%-5d", k)
	}
	fmt.Println()
	for _, p := range workloads {
		fmt.Printf("%-13s", p)
		rs, err := aggcache.EntropySweep(sequences[p], lengths)
		if err != nil {
			return err
		}
		for _, r := range rs {
			fmt.Printf("  %7.3f", r.Bits)
		}
		fmt.Println()
	}

	// Figure 8: what does an intervening client cache do to the
	// predictability of the miss stream a server sees?
	fmt.Println("\nsuccessor entropy (k=1) of the users workload after LRU filtering:")
	for _, filter := range []int{0, 10, 50, 100, 500, 1000} {
		seq := sequences[aggcache.ProfileUsers]
		label := "unfiltered"
		if filter > 0 {
			var err error
			seq, err = aggcache.FilterLRU(seq, filter)
			if err != nil {
				return err
			}
			label = fmt.Sprintf("filter=%d", filter)
		}
		r, err := aggcache.SuccessorEntropy(seq, 1)
		if err != nil {
			return err
		}
		fmt.Printf("  %-12s %6.3f bits over %6d misses\n", label, r.Bits, len(seq))
	}

	// Figure 5: recency beats frequency for successor-list replacement.
	fmt.Println("\nP(successor list misses the actual next file), workstation workload:")
	fmt.Printf("%-10s %8s %8s %8s\n", "list size", "oracle", "lru", "lfu")
	seq := sequences[aggcache.ProfileWorkstation]
	oracle, err := aggcache.EvaluateSuccessorPolicy(seq, aggcache.SuccessorOracle, 0)
	if err != nil {
		return err
	}
	for _, n := range []int{1, 2, 3, 5, 10} {
		lru, err := aggcache.EvaluateSuccessorPolicy(seq, aggcache.SuccessorLRU, n)
		if err != nil {
			return err
		}
		lfu, err := aggcache.EvaluateSuccessorPolicy(seq, aggcache.SuccessorLFU, n)
		if err != nil {
			return err
		}
		fmt.Printf("%-10d %8.4f %8.4f %8.4f\n",
			n, oracle.MissProbability(), lru.MissProbability(), lfu.MissProbability())
	}
	fmt.Println("\na handful of recency-managed successors per file carries nearly all")
	fmt.Println("of the relationship information an oracle could use (Figure 5).")

	// Beyond the paper: conditioning on the previous TWO files (the PPM
	// idea from the related work) instead of one.
	fmt.Println("\nconditional entropy by context length (server workload):")
	for _, ctx := range []int{1, 2, 3} {
		r, err := aggcache.ConditionalEntropy(sequences[aggcache.ProfileServer], ctx, 1)
		if err != nil {
			return err
		}
		fmt.Printf("  last %d file(s) known: %6.3f bits\n", ctx, r.Bits)
	}
	fmt.Println("longer contexts squeeze out more predictability, at state that")
	fmt.Println("grows with distinct contexts - the trade-off behind PPM prefetchers.")
	return nil
}
