// Quickstart: generate a calibrated workload, run a plain LRU client cache
// and an aggregating cache side by side, and print the reduction in demand
// fetches — the paper's headline client-side result.
package main

import (
	"fmt"
	"os"

	"aggcache"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// The "server" workload models barber, the most application-driven
	// (and hence most predictable) of the paper's four CMU traces.
	tr, err := aggcache.StandardWorkload(aggcache.ProfileServer, 1, 60000)
	if err != nil {
		return err
	}
	ids := tr.OpenIDs()
	fmt.Printf("workload: %d opens over %d files\n\n", len(ids), tr.Paths.Len())

	const capacity = 300
	fmt.Printf("%-22s %14s %9s %14s\n", "cache", "demand fetches", "hit rate", "prefetch hits")
	for _, g := range []int{1, 2, 3, 5, 10} {
		c, err := aggcache.New(aggcache.Config{Capacity: capacity, GroupSize: g})
		if err != nil {
			return err
		}
		for _, id := range ids {
			c.Access(id)
		}
		s := c.Stats()
		name := fmt.Sprintf("aggregating (g=%d)", g)
		if g == 1 {
			name = "plain LRU"
		}
		fmt.Printf("%-22s %14d %8.1f%% %14d\n",
			name, s.DemandFetches(), 100*s.HitRate(), s.PrefetchHits)
	}

	lru, err := aggcache.SimulateClient(ids, capacity, 1)
	if err != nil {
		return err
	}
	g5, err := aggcache.SimulateClient(ids, capacity, 5)
	if err != nil {
		return err
	}
	fmt.Printf("\ngroups of five cut remote fetches by %.1f%% (paper: 50-60%% on this workload)\n",
		100*(1-float64(g5.Fetches)/float64(lru.Fetches)))
	return nil
}
