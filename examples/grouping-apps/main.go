// Grouping-apps demonstrates the two applications the paper's §6 targets
// beyond caching: laying files out on storage by group (so related files
// sit together) and selecting mobile hoards by working-set closure (so
// disconnected sessions find *all* the files they need, not just the
// popular ones).
package main

import (
	"fmt"
	"math/rand"
	"os"

	"aggcache"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "grouping-apps:", err)
		os.Exit(1)
	}
}

func run() error {
	if err := placementDemo(); err != nil {
		return err
	}
	fmt.Println()
	return hoardDemo()
}

// placementDemo: group-aware placement vs the classic frequency-only
// organ pipe on a task-structured workload.
func placementDemo() error {
	tr, err := aggcache.StandardWorkload(aggcache.ProfileServer, 1, 40000)
	if err != nil {
		return err
	}
	ids := tr.OpenIDs()

	tk, err := aggcache.NewTracker(aggcache.SuccessorLRU, 3)
	if err != nil {
		return err
	}
	tk.ObserveAll(ids)
	b, err := aggcache.NewGroupBuilder(tk, 8, aggcache.StrategyChain)
	if err != nil {
		return err
	}
	cover := aggcache.BuildCover(tk, b, ids)

	fmt.Println("data placement: mean seek distance replaying the trace")
	layouts := []struct {
		name   string
		layout *aggcache.Layout
	}{
		{"sequential (first access)", aggcache.SequentialLayout(ids)},
		{"organ pipe (by frequency)", aggcache.OrganPipeLayout(ids)},
		{"grouped (covering sets)", aggcache.GroupedLayout(cover, ids)},
	}
	for _, l := range layouts {
		c, err := aggcache.SeekCost(l.layout, ids)
		if err != nil {
			return err
		}
		fmt.Printf("  %-28s %8.1f slots\n", l.name, c.Mean())
	}
	fmt.Println("frequency-only placement is optimal only if accesses were independent;")
	fmt.Println("they are not, and grouping exploits exactly that (paper §2.1).")
	return nil
}

// hoardDemo: select a disconnected-operation hoard by group closure vs by
// popularity, and judge by whole-session completion.
func hoardDemo() error {
	// A session-structured history: 12 tasks of 8 files, hot-task skew,
	// many interrupted runs.
	rng := rand.New(rand.NewSource(7))
	var tasks [][]aggcache.FileID
	id := aggcache.FileID(0)
	for i := 0; i < 12; i++ {
		var task []aggcache.FileID
		for j := 0; j < 8; j++ {
			task = append(task, id)
			id++
		}
		tasks = append(tasks, task)
	}
	pick := func() int {
		if rng.Float64() < 0.55 {
			return rng.Intn(3)
		}
		return 3 + rng.Intn(9)
	}
	var history []aggcache.FileID
	for i := 0; i < 2000; i++ {
		for _, fid := range tasks[pick()] {
			history = append(history, fid)
			if rng.Float64() > 0.65 {
				break // interrupted run
			}
		}
	}
	var sessions [][]aggcache.FileID
	for i := 0; i < 400; i++ {
		sessions = append(sessions, tasks[pick()])
	}

	// Frequency-ranked successor lists give stabler closures for
	// hoarding (see EXPERIMENTS.md, xhoard).
	tk, err := aggcache.NewTracker(aggcache.SuccessorLFU, 3)
	if err != nil {
		return err
	}
	tk.ObserveAll(history)

	fmt.Println("mobile hoarding: fraction of disconnected sessions fully served")
	fmt.Printf("  %-8s %12s %15s\n", "budget", "frequency", "group closure")
	for _, budget := range []int{16, 32, 48} {
		freq, err := aggcache.BuildHoard(tk, aggcache.HoardFrequency, budget, 8)
		if err != nil {
			return err
		}
		closure, err := aggcache.BuildHoard(tk, aggcache.HoardGroupClosure, budget, 8)
		if err != nil {
			return err
		}
		fr := aggcache.EvaluateHoardRuns(freq, sessions)
		cr := aggcache.EvaluateHoardRuns(closure, sessions)
		fmt.Printf("  %-8d %11.1f%% %14.1f%%\n",
			budget, 100*fr.CompletionRate(), 100*cr.CompletionRate())
	}
	fmt.Println("popularity hoards behead every working set; closures hoard fewer")
	fmt.Println("tasks but whole ones — which is what a disconnected session needs.")
	return nil
}
