# aggcache build targets. Standard library only; no external deps.

GO ?= go

.PHONY: all build vet test race race-par cluster churn gossip bench bench-json bench-gate loadtest metrics-smoke rolling-smoke gossip-smoke trace-smoke profile chaos experiments examples fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Focused race pass over the deliberately concurrent code: the parallel
# sweep engine, the memoized workload cache, the pipelined fsnet serving
# path (mux client, sharded server, staging coalescer), and the
# concurrency-safe interner.
race-par:
	$(GO) test -race -run 'Parallel|RunCells|Sweep|Workload' ./internal/simulate/ ./internal/experiments/
	$(GO) test -race -run 'Pipelined|Concurrent|FlightGroup|SyncInterner|Interleaved|Chaos' ./internal/fsnet/ ./internal/trace/

# Cluster peer tier under the race detector: the 3-node in-process
# harness (correct groups, peer-death failover, mirror absorption,
# forward coalescing), the ring property tests, and the clustered
# aggserve/aggbench wiring.
cluster:
	$(GO) test -race -run 'TestCluster|TestRing|TestMirror' ./internal/cluster/ ./internal/fsnet/
	$(GO) test -race -run 'TestRunCluster|TestRunLoadCluster' ./cmd/aggserve/ ./cmd/aggbench/

# Elastic membership under the race detector: live view updates, the
# kill/rejoin/drain churn harness, hinted handoff, the drain handoff
# protocol, and the aggserve/aggbench churn surfaces (DESIGN.md §13).
churn:
	$(GO) test -race -run 'TestMembership|TestClusterChurn|TestHint|TestParsePeersFile' ./internal/cluster/
	$(GO) test -race -run 'TestHandoff|TestExportGroups' ./internal/fsnet/
	$(GO) test -race -run 'TestRunClusterDrainEndpoints|TestRunPeersFileReload|TestRunLoadChurn' ./cmd/aggserve/ ./cmd/aggbench/

# Gossip view dissemination under the race detector: the wire-level
# view frames and piggybacked hints, the cluster-side exchange and drain
# goodbye, and the deterministic partition/convergence harness
# (DESIGN.md §15).
gossip:
	$(GO) test -race -run 'TestView|TestHintPiggyback|TestHintDedup' ./internal/fsnet/
	$(GO) test -race -run 'TestApplyView|TestViewPullPushBetween|TestDrainGoodbye|TestViewHintHook|TestViewExchangeRespects' ./internal/cluster/
	$(GO) test -race ./internal/gossip/

# Machine-readable baseline for the key hot-path and sweep benchmarks
# (ns/op, B/op, allocs/op, custom metrics). Commit the refreshed file when
# a perf change moves the numbers on purpose.
bench-json:
	{ $(GO) test -run '^$$' -bench 'BenchmarkAccess|BenchmarkTrackerObserve|BenchmarkSuccessorEntropyK1' -benchmem . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkClientSweep|BenchmarkServerSweep' -benchmem -benchtime 2x ./internal/simulate/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkOpenLoopback$$|BenchmarkOpenLoopbackSerial|BenchmarkOpenPipelined' -benchmem ./internal/fsnet/ ; \
	  $(GO) run ./cmd/aggbench -conns 8 -workers 8 -opens 4000 -rtt 2ms -gobench ; \
	  $(GO) run ./cmd/aggbench -conns 8 -workers 8 -opens 4000 -rtt 2ms -proto 2 -gobench ; \
	  $(GO) run ./cmd/aggbench -conns 8 -workers 8 -opens 4000 -rtt 2ms -serial -gobench ; \
	  $(GO) run ./cmd/aggbench -cluster 1 -conns 9 -workers 4 -opens 4000 -gobench ; \
	  $(GO) run ./cmd/aggbench -cluster 3 -conns 9 -workers 4 -opens 4000 -gobench ; } \
	| $(GO) run ./cmd/benchjson > BENCH_BASELINE.json
	@echo wrote BENCH_BASELINE.json

# Allocation-regression gate: re-run the fsnet hot-path benches and fail
# if allocs/op regressed >20% against the committed BENCH_BASELINE.json
# (ns/op is reported but not gated; see scripts/bench_gate.sh).
bench-gate:
	sh ./scripts/bench_gate.sh

# Load-generator comparison: the pipelined serving path vs the lock-step
# baseline over a simulated 2ms-RTT network, 8 connections x 8 goroutines.
# The throughput ratio is the headline speedup of DESIGN.md §10.
loadtest:
	$(GO) run ./cmd/aggbench -conns 8 -workers 8 -opens 4000 -rtt 2ms
	$(GO) run ./cmd/aggbench -conns 8 -workers 8 -opens 4000 -rtt 2ms -serial
	$(GO) run ./cmd/aggbench -cluster 1 -conns 9 -workers 4 -opens 4000
	$(GO) run ./cmd/aggbench -cluster 3 -conns 9 -workers 4 -opens 4000

# End-to-end observability smoke: boot an aggserve, drive load with
# aggbench, scrape /metrics, and validate the exposition with the strict
# parser in internal/obs (DESIGN.md §12).
metrics-smoke:
	sh ./scripts/metrics_smoke.sh

# Rolling-restart smoke: boot a 3-node aggserve cluster, drain one node
# over HTTP while aggbench drives load, and verify readiness flips with
# zero failed opens (DESIGN.md §13).
rolling-smoke:
	sh ./scripts/rolling_restart_smoke.sh

# Gossip convergence smoke: boot a 3-node aggserve cluster, POST /reload
# on exactly one node, and verify gossip alone converges every node's
# epoch; then drain a node and verify the goodbye push shrinks both
# survivors' views with no operator reload (DESIGN.md §15).
gossip-smoke:
	sh ./scripts/gossip_smoke.sh

# Distributed-tracing smoke: boot a 3-node aggserve cluster with head
# sampling forced on, drive load, and verify the fleet scraper stitches
# a >= 2-node trace, /trace/<id> resolves it, and /metrics carries
# exemplars (DESIGN.md §16).
trace-smoke:
	sh ./scripts/trace_smoke.sh

# Profile the headline claims experiment and print the hottest frames.
# Leaves cpu.pprof and mem.pprof behind for interactive `go tool pprof`.
profile:
	$(GO) run ./cmd/experiments -fig claims -opens 120000 -seed 1 \
		-cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null
	$(GO) tool pprof -top -nodecount 15 cpu.pprof
	$(GO) tool pprof -top -nodecount 15 -sample_index=alloc_space mem.pprof

# Fault-injection chaos suite (client x server under deterministic faults),
# always with the race detector.
chaos:
	$(GO) test -race -run 'TestChaos' -v ./internal/fsnet/

# Regenerate every paper figure at full scale (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -fig all -opens 120000 -seed 1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/servercache
	$(GO) run ./examples/netgroup
	$(GO) run ./examples/predictability
	$(GO) run ./examples/grouping-apps

# Short fuzzing pass over the wire and trace codecs.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecodeOpenRequest -fuzztime=30s ./internal/fsnet/
	$(GO) test -run=^$$ -fuzz=FuzzReadBinary -fuzztime=30s ./internal/trace/
	$(GO) test -run=^$$ -fuzz=FuzzRingOwner -fuzztime=30s ./internal/cluster/

clean:
	$(GO) clean ./...
