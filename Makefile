# aggcache build targets. Standard library only; no external deps.

GO ?= go

.PHONY: all build vet test race bench chaos experiments examples fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Fault-injection chaos suite (client x server under deterministic faults),
# always with the race detector.
chaos:
	$(GO) test -race -run 'TestChaos' -v ./internal/fsnet/

# Regenerate every paper figure at full scale (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -fig all -opens 120000 -seed 1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/servercache
	$(GO) run ./examples/netgroup
	$(GO) run ./examples/predictability
	$(GO) run ./examples/grouping-apps

# Short fuzzing pass over the wire and trace codecs.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecodeOpenRequest -fuzztime=30s ./internal/fsnet/
	$(GO) test -run=^$$ -fuzz=FuzzReadBinary -fuzztime=30s ./internal/trace/

clean:
	$(GO) clean ./...
