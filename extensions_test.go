package aggcache

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadePrefetchBaselines(t *testing.T) {
	preds := []Predictor{
		NewLastSuccessorPredictor(),
		NewFirstSuccessorPredictor(),
	}
	pg, err := NewProbabilityGraphPredictor(3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	preds = append(preds, pg)
	for _, p := range preds {
		c, err := NewPrefetchingCache(16, 3, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		for round := 0; round < 5; round++ {
			for _, id := range []FileID{1, 2, 3, 4} {
				c.Access(id)
			}
		}
		s := c.Stats()
		if s.Hits+s.Misses != 20 {
			t.Errorf("%s: accesses = %d", p.Name(), s.Hits+s.Misses)
		}
	}
}

func TestFacadePlacement(t *testing.T) {
	seq := []FileID{1, 2, 3, 1, 2, 3, 4, 5}
	tr, err := NewTracker(SuccessorLRU, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr.ObserveAll(seq)
	b, err := NewGroupBuilder(tr, 3, StrategyChain)
	if err != nil {
		t.Fatal(err)
	}
	cover := BuildCover(tr, b, seq)

	for _, l := range []*Layout{
		SequentialLayout(seq), OrganPipeLayout(seq), GroupedLayout(cover, seq),
	} {
		c, err := SeekCost(l, seq)
		if err != nil {
			t.Fatal(err)
		}
		if c.Seeks != uint64(len(seq)-1) {
			t.Errorf("Seeks = %d, want %d", c.Seeks, len(seq)-1)
		}
	}
}

func TestFacadeHoard(t *testing.T) {
	tr, err := NewTracker(SuccessorLFU, 3)
	if err != nil {
		t.Fatal(err)
	}
	seq := []FileID{1, 2, 3, 1, 2, 3, 1, 2, 3}
	tr.ObserveAll(seq)
	h, err := BuildHoard(tr, HoardGroupClosure, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 3 {
		t.Errorf("hoard len = %d, want 3", h.Len())
	}
	if r := EvaluateHoard(h, seq); r.Misses != 0 {
		t.Errorf("misses = %d, want 0", r.Misses)
	}
	if r := EvaluateHoardRuns(h, [][]FileID{{1, 2, 3}, {1, 9}}); r.Complete != 1 {
		t.Errorf("complete = %d, want 1", r.Complete)
	}
	if _, err := BuildHoard(tr, HoardFrequency, 2, 1); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeViz(t *testing.T) {
	tr := NewTrace()
	for _, p := range []string{"/a", "/b", "/a", "/b", "/a", "/c"} {
		tr.Append(Event{Op: OpOpen}, p)
	}
	entries := ProfileFiles(tr, 2)
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	var buf bytes.Buffer
	if err := WriteFileReport(&buf, entries); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "/a") {
		t.Error("report missing file")
	}
	buf.Reset()
	if err := WriteFileBarsSVG(&buf, entries); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "<svg") {
		t.Error("not an SVG")
	}

	ws, err := EntropyWindows(tr.OpenIDs(), 3)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteEntropyTimelineSVG(&buf, ws); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "<svg") {
		t.Error("timeline not an SVG")
	}
}

func TestFacadeDFSImportAndMerge(t *testing.T) {
	in := "1.0 hostA 1 2 open /x\n2.0 hostA 1 2 open /y\n"
	tr, imp, err := ReadDFSTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if imp.Records != 2 || tr.Len() != 2 {
		t.Fatalf("import = %+v", imp)
	}
	other := NewTrace()
	other.Append(Event{Op: OpOpen, Client: 2}, "/z")
	merged, err := MergeTraces(tr, other)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 3 {
		t.Errorf("merged len = %d", merged.Len())
	}
	split := SplitTraceByClient(merged)
	if len(split) != 2 {
		t.Errorf("split clients = %d", len(split))
	}
}

func TestFacadeHierarchy(t *testing.T) {
	seq := []FileID{1, 2, 1, 2, 3}
	res, err := SimulateHierarchy(seq, HierarchyConfig{
		Levels: []HierarchyLevel{
			{Name: "l1", Capacity: 2, Scheme: LevelLRU},
			{Name: "l2", Capacity: 4, Scheme: LevelAggregating, GroupSize: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 5 || len(res.Levels) != 2 {
		t.Errorf("result = %+v", res)
	}
	if _, err := SimulateHierarchy(seq, HierarchyConfig{}); err == nil {
		t.Error("empty hierarchy accepted")
	}
	// PPM predictor is exposed too.
	ppm, err := NewPPMPredictor(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range seq {
		ppm.Observe(id)
	}
	if ppm.Name() == "" {
		t.Error("ppm name empty")
	}
}

func TestFacadePersistence(t *testing.T) {
	tk, err := NewTracker(SuccessorLRU, 3)
	if err != nil {
		t.Fatal(err)
	}
	tk.ObserveAll([]FileID{1, 2, 3, 1, 2, 3})
	var buf bytes.Buffer
	if err := SaveTracker(tk, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTracker(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := back.First(1); !ok || f != 2 {
		t.Errorf("restored First(1) = %d,%v", f, ok)
	}
	// Aggregating cache metadata round trip.
	c, err := New(Config{Capacity: 8, GroupSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []FileID{1, 2, 3, 1, 2, 3} {
		c.Access(id)
	}
	buf.Reset()
	if err := c.SaveMetadata(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := New(Config{Capacity: 8, GroupSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.LoadMetadata(&buf); err != nil {
		t.Fatal(err)
	}
	g := c2.BuildGroup(1)
	if len(g) != 3 || g[1] != 2 {
		t.Errorf("restored BuildGroup = %v", g)
	}
}

func TestFacadeMultiServerAndEvents(t *testing.T) {
	tr, err := StandardWorkload(ProfileUsers, 1, 5000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateServerMulti(tr.Events, ServerSimConfig{
		FilterCapacity: 50, ServerCapacity: 200, Scheme: ServerAggregating})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients < 2 || res.ClientMisses == 0 {
		t.Errorf("result = %+v", res)
	}
	merged, err := EvaluateSuccessorPolicyEvents(tr.Events, SuccessorLRU, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	perClient, err := EvaluateSuccessorPolicyEvents(tr.Events, SuccessorLRU, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if perClient.MissProbability() >= merged.MissProbability() {
		t.Errorf("per-client %.3f not below merged %.3f",
			perClient.MissProbability(), merged.MissProbability())
	}
	// Higher-order conditional entropy is exposed.
	r, err := ConditionalEntropy(tr.OpenIDs(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bits < 0 {
		t.Errorf("Bits = %v", r.Bits)
	}
}
