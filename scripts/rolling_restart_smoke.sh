#!/bin/sh
# Rolling-restart smoke: boot a 3-node aggserve cluster from a shared
# peers file, drive real load with aggbench while one node drains over
# HTTP, and verify the operational story end to end: /healthz and
# /readyz answer, the drain hands learned group state to the survivors
# (handoff counters move), readiness flips to 503 on the drained node
# only, and the load run finishes with zero failed opens. Run via
# `make rolling-smoke`.
set -eu

A1=${A1:-127.0.0.1:7391}
A2=${A2:-127.0.0.1:7392}
A3=${A3:-127.0.0.1:7393}
S1=${S1:-127.0.0.1:8391}
S2=${S2:-127.0.0.1:8392}
S3=${S3:-127.0.0.1:8393}

BIN=$(mktemp -t aggserve-rolling.XXXXXX)
PEERS=$(mktemp -t aggserve-peers.XXXXXX)
printf '%s\n%s\n%s\n' "$A1" "$A2" "$A3" > "$PEERS"

go build -o "$BIN" ./cmd/aggserve

"$BIN" -addr "$A1" -self "$A1" -peers-file "$PEERS" -synthetic 200 -stats "$S1" -idle-timeout 0 &
P1=$!
"$BIN" -addr "$A2" -self "$A2" -peers-file "$PEERS" -synthetic 200 -stats "$S2" -idle-timeout 0 &
P2=$!
"$BIN" -addr "$A3" -self "$A3" -peers-file "$PEERS" -synthetic 200 -stats "$S3" -idle-timeout 0 &
P3=$!
trap 'kill "$P1" "$P2" "$P3" 2>/dev/null || true; rm -f "$BIN" "$PEERS"' EXIT

wait_ready() {
    for _ in $(seq 1 50); do
        code=$(curl -s -o /dev/null -w '%{http_code}' "http://$1/readyz" 2>/dev/null || true)
        [ "$code" = "200" ] && return 0
        sleep 0.1
    done
    echo "rolling-smoke: node $1 never became ready" >&2
    return 1
}
wait_ready "$S1"
wait_ready "$S2"
wait_ready "$S3"

# The bench provisions only its target's store, and a clustered node
# answers remote paths from their owner — so provision every replica by
# running the identical workload against each node once. The first two
# passes see NotFound forwards to still-empty peers (hence || true);
# they exist for their write-through side effect and to teach each node
# real group state worth draining.
BENCH="-conns 6 -workers 2 -opens 600 -seed 1"
go run ./cmd/aggbench -addr "$A2" $BENCH >/dev/null 2>&1 || true
go run ./cmd/aggbench -addr "$A3" $BENCH >/dev/null 2>&1 || true

# The gated run: full load through node 1 while node 3 drains under it.
OUT=$(mktemp -t aggbench-rolling.XXXXXX)
go run ./cmd/aggbench -addr "$A1" $BENCH > "$OUT" 2>&1 &
LOAD=$!

sleep 0.3
curl -fsS -X POST "http://$S3/drain" > /dev/null

# Readiness flips on the drained node only; liveness stays green.
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$S3/readyz")
[ "$code" = "503" ] || { echo "rolling-smoke: drained /readyz = $code, want 503" >&2; exit 1; }
curl -fsS "http://$S3/healthz" > /dev/null
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$S1/readyz")
[ "$code" = "200" ] || { echo "rolling-smoke: survivor /readyz = $code, want 200" >&2; exit 1; }

wait "$LOAD" || { echo "rolling-smoke: load run failed under drain:" >&2; cat "$OUT" >&2; rm -f "$OUT"; exit 1; }
cat "$OUT"
grep -q ' 0 errors)' "$OUT" || { echo "rolling-smoke: load run saw failed opens" >&2; rm -f "$OUT"; exit 1; }
rm -f "$OUT"

# The drained node exported its group state and the survivors installed
# it: drain counters on node 3, handoff counters on nodes 1+2.
curl -fsS "http://$S3/metrics" | grep '^cluster_drain_groups_sent_total' | awk '{ if ($2+0 <= 0) exit 1 }' \
    || { echo "rolling-smoke: drain sent no groups" >&2; exit 1; }
sent=$(curl -fsS "http://$S1/metrics" "http://$S2/metrics" | awk '/^fsnet_server_handoff_groups_total/ { n += $2 } END { print n+0 }')
[ "$sent" -gt 0 ] || { echo "rolling-smoke: survivors installed no handoff groups" >&2; exit 1; }

echo "rolling-smoke: OK (drained node handed off, survivors installed $sent groups, zero failed opens)"
