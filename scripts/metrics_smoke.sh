#!/bin/sh
# End-to-end metrics smoke: boot an aggserve with the stats server,
# drive a short aggbench load through it, then validate the live
# /metrics exposition with the strict parser in internal/obs
# (TestLiveExposition). Run via `make metrics-smoke`.
set -eu

ADDR=${ADDR:-127.0.0.1:7390}
STATS=${STATS:-127.0.0.1:8390}
BIN=$(mktemp -t aggserve-smoke.XXXXXX)

go build -o "$BIN" ./cmd/aggserve
"$BIN" -addr "$ADDR" -synthetic 500 -stats "$STATS" -slow-request 1ns &
SRV=$!
trap 'kill "$SRV" 2>/dev/null || true; rm -f "$BIN"' EXIT

ok=""
for _ in $(seq 1 50); do
    if curl -fsS "http://$STATS/metrics" >/dev/null 2>&1; then ok=1; break; fi
    sleep 0.1
done
[ -n "$ok" ] || { echo "metrics-smoke: stats server never came up on $STATS" >&2; exit 1; }

# Drive real opens over the wire so every layer has something to count.
go run ./cmd/aggbench -addr "$ADDR" -conns 4 -workers 2 -opens 500 -metrics

# Quick shape checks a human can read in CI logs (grep reads the whole
# stream so curl never sees a closed pipe)...
curl -fsS "http://$STATS/metrics" | grep '^fsnet_server_requests_total'
curl -fsS "http://$STATS/metrics.json" | grep -c '"metrics"' >/dev/null

# ...then the strict exposition validation.
AGGCACHE_METRICS_URL="http://$STATS/metrics" go test -run TestLiveExposition -count=1 ./internal/obs/

echo "metrics-smoke: OK"
