#!/bin/sh
# Gossip convergence smoke: boot a 3-node aggserve cluster, POST /reload
# on exactly ONE node, and verify gossip alone carries the new epoch to
# both of the others (poll /stats until every node reports it). Then
# drain one node and verify the goodbye push shrinks the two survivors'
# views — again with no operator reload anywhere. Run via
# `make gossip-smoke`.
set -eu

A1=${A1:-127.0.0.1:7394}
A2=${A2:-127.0.0.1:7395}
A3=${A3:-127.0.0.1:7396}
S1=${S1:-127.0.0.1:8394}
S2=${S2:-127.0.0.1:8395}
S3=${S3:-127.0.0.1:8396}

BIN=$(mktemp -t aggserve-gossip.XXXXXX)
PEERS=$(mktemp -t aggserve-peers.XXXXXX)
printf '%s\n%s\n%s\n' "$A1" "$A2" "$A3" > "$PEERS"

go build -o "$BIN" ./cmd/aggserve

COMMON="-peers-file $PEERS -synthetic 50 -idle-timeout 0 -gossip-interval 100ms"
"$BIN" -addr "$A1" -self "$A1" $COMMON -stats "$S1" &
P1=$!
"$BIN" -addr "$A2" -self "$A2" $COMMON -stats "$S2" &
P2=$!
"$BIN" -addr "$A3" -self "$A3" $COMMON -stats "$S3" &
P3=$!
trap 'kill "$P1" "$P2" "$P3" 2>/dev/null || true; rm -f "$BIN" "$PEERS"' EXIT

wait_ready() {
    for _ in $(seq 1 50); do
        code=$(curl -s -o /dev/null -w '%{http_code}' "http://$1/readyz" 2>/dev/null || true)
        [ "$code" = "200" ] && return 0
        sleep 0.1
    done
    echo "gossip-smoke: node $1 never became ready" >&2
    return 1
}
wait_ready "$S1"
wait_ready "$S2"
wait_ready "$S3"

# The top-level Epoch field in /stats is indented two spaces; the one
# nested under Cluster is deeper, so the anchor disambiguates them.
epoch_is() {
    curl -fsS "http://$1/stats" 2>/dev/null | grep -q "^  \"Epoch\": $2" || return 1
}

# Every node boots at epoch 1 from the shared peers file.
for s in "$S1" "$S2" "$S3"; do
    epoch_is "$s" 1 || { echo "gossip-smoke: node $s did not boot at epoch 1" >&2; exit 1; }
done

# One reload, one node. The peers file carries no epoch directive, so
# node 1 installs epoch 2 — and only gossip can get it to nodes 2 and 3.
curl -fsS -X POST "http://$S1/reload" > /dev/null

wait_epoch() {
    for _ in $(seq 1 50); do
        epoch_is "$1" "$2" && return 0
        sleep 0.2
    done
    echo "gossip-smoke: node $1 never converged to epoch $2" >&2
    curl -fsS "http://$1/stats" >&2 || true
    return 1
}
wait_epoch "$S1" 2
wait_epoch "$S2" 2
wait_epoch "$S3" 2

# Drain node 3: its goodbye push offers the survivors a self-less view
# at epoch 3. Both survivors must drop it without any reload.
curl -fsS -X POST "http://$S3/drain" > /dev/null
wait_epoch "$S1" 3
wait_epoch "$S2" 3
for s in "$S1" "$S2"; do
    curl -fsS "http://$s/stats" | grep -q '"Members": 2' \
        || { echo "gossip-smoke: survivor $s still lists the drained node" >&2; exit 1; }
done

# Gossip traffic actually flowed: anti-entropy rounds ran, and at least
# one view moved by gossip — as a pull the learner applied (its
# gossip_views_applied_total) or a push-back from the newer side (its
# gossip_pushes_total); which of the two wins the race varies by run.
rounds=$(curl -fsS "http://$S1/metrics" | awk '/^gossip_rounds_total/ { print $2+0 }')
[ "${rounds:-0}" -gt 0 ] || { echo "gossip-smoke: no anti-entropy rounds ran" >&2; exit 1; }
moved=$(curl -fsS "http://$S1/metrics" "http://$S2/metrics" "http://$S3/metrics" \
    | awk '/^gossip_views_applied_total|^gossip_pushes_total/ { n += $2 } END { print n+0 }')
[ "$moved" -gt 0 ] || { echo "gossip-smoke: no view moved by gossip" >&2; exit 1; }

echo "gossip-smoke: OK (one reload converged 3 nodes to epoch 2, drain goodbye converged survivors to epoch 3, $moved gossip transfers)"
