#!/bin/sh
# bench_gate.sh — allocation-regression gate for the fsnet hot path.
#
# Runs the fsnet benchmarks with -benchmem and diffs allocs/op against
# the committed BENCH_BASELINE.json via cmd/benchgate: a >20% allocs/op
# regression on any gated benchmark fails the script (ns/op is reported
# but never gated — CI wall time is noise). Refresh the baseline with
# `make bench-json` when a change moves the numbers on purpose.
#
# Usage: sh scripts/bench_gate.sh  (or: make bench-gate)
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}

$GO test -run '^$' \
    -bench 'BenchmarkOpenLoopback$|BenchmarkOpenLoopbackSerial|BenchmarkOpenPipelined' \
    -benchmem -benchtime 0.5s -count 1 ./internal/fsnet/ \
  | $GO run ./cmd/benchgate -baseline BENCH_BASELINE.json
