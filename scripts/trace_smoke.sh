#!/bin/sh
# Distributed-tracing smoke: boot a 3-node aggserve cluster with head
# sampling forced on (-trace-sample 1), drive real load with aggbench so
# some opens forward between nodes, then prove the tracing story end to
# end: the fleet scraper (aggbench -trace-collect) stitches at least one
# trace spanning two or more nodes, the stitched trace's ID resolves via
# /trace/<id> on the nodes that carried it, and /metrics histograms link
# buckets to traces through OpenMetrics exemplars. Run via
# `make trace-smoke`.
set -eu

A1=${A1:-127.0.0.1:7397}
A2=${A2:-127.0.0.1:7398}
A3=${A3:-127.0.0.1:7399}
S1=${S1:-127.0.0.1:8397}
S2=${S2:-127.0.0.1:8398}
S3=${S3:-127.0.0.1:8399}

BIN=$(mktemp -t aggserve-trace.XXXXXX)
PEERS=$(mktemp -t aggserve-peers.XXXXXX)
printf '%s\n%s\n%s\n' "$A1" "$A2" "$A3" > "$PEERS"

go build -o "$BIN" ./cmd/aggserve

COMMON="-peers-file $PEERS -synthetic 200 -idle-timeout 0 -trace-sample 1"
"$BIN" -addr "$A1" -self "$A1" $COMMON -stats "$S1" &
P1=$!
"$BIN" -addr "$A2" -self "$A2" $COMMON -stats "$S2" &
P2=$!
"$BIN" -addr "$A3" -self "$A3" $COMMON -stats "$S3" &
P3=$!
trap 'kill "$P1" "$P2" "$P3" 2>/dev/null || true; rm -f "$BIN" "$PEERS"' EXIT

wait_ready() {
    for _ in $(seq 1 50); do
        code=$(curl -s -o /dev/null -w '%{http_code}' "http://$1/readyz" 2>/dev/null || true)
        [ "$code" = "200" ] && return 0
        sleep 0.1
    done
    echo "trace-smoke: node $1 never became ready" >&2
    return 1
}
wait_ready "$S1"
wait_ready "$S2"
wait_ready "$S3"

# Provision each replica (write-through side effect; early passes see
# NotFound forwards to still-empty peers), then the traced load run:
# every open through node 1 mints a root, and opens of remotely-owned
# paths carry the context to their owner.
BENCH="-conns 6 -workers 2 -opens 400 -seed 1"
go run ./cmd/aggbench -addr "$A2" $BENCH >/dev/null 2>&1 || true
go run ./cmd/aggbench -addr "$A3" $BENCH >/dev/null 2>&1 || true
go run ./cmd/aggbench -addr "$A1" $BENCH >/dev/null

# The stitched-trace assertion: the fleet scraper must find a trace
# whose spans live on at least two nodes, or exit non-zero.
STITCHED=$(mktemp -t aggbench-traces.XXXXXX)
go run ./cmd/aggbench -trace-collect "$S1,$S2,$S3" -trace-min-nodes 2 > "$STITCHED" \
    || { echo "trace-smoke: no trace spans 2 nodes" >&2; cat "$STITCHED" >&2; rm -f "$STITCHED"; exit 1; }

# The widest trace is first; its ID must resolve via /trace/<id> on at
# least two of the three nodes (404 on non-participants is correct).
TID=$(grep -o '"trace_id": "[0-9a-f]\{32\}"' "$STITCHED" | head -1 | cut -d'"' -f4)
rm -f "$STITCHED"
[ -n "$TID" ] || { echo "trace-smoke: collector emitted no trace IDs" >&2; exit 1; }
hits=0
for s in "$S1" "$S2" "$S3"; do
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://$s/trace/$TID")
    [ "$code" = "200" ] && hits=$((hits + 1))
done
[ "$hits" -ge 2 ] || { echo "trace-smoke: trace $TID resolves on $hits nodes, want >= 2" >&2; exit 1; }

# Exemplars: with sampling at 1, the serving histograms must link
# buckets to trace IDs in the OpenMetrics syntax.
curl -fsS "http://$S1/metrics" | grep -q '# {trace_id="' \
    || { echo "trace-smoke: /metrics carries no exemplars" >&2; exit 1; }

echo "trace-smoke: OK (trace $TID spans $hits nodes, exemplars exposed)"
