package aggcache

import (
	"sync"
	"testing"

	"aggcache/internal/experiments"
)

// Figure benchmarks: each BenchmarkFig* regenerates the corresponding
// paper figure's table once per iteration (at a reduced trace length so a
// bench iteration stays subsecond) and reports the figure's headline
// quantity as a custom metric. cmd/experiments produces the full-scale
// tables recorded in EXPERIMENTS.md.

const benchOpens = 15000

var benchCfg = experiments.Config{Opens: benchOpens, Seed: 1}

// benchIDs caches generated workloads across benchmarks.
var benchIDs sync.Map // WorkloadProfile -> []FileID

func workloadIDs(b *testing.B, p WorkloadProfile) []FileID {
	b.Helper()
	if v, ok := benchIDs.Load(p); ok {
		return v.([]FileID)
	}
	tr, err := StandardWorkload(p, 1, benchOpens)
	if err != nil {
		b.Fatal(err)
	}
	ids := tr.OpenIDs()
	benchIDs.Store(p, ids)
	return ids
}

func benchFigure(b *testing.B, id string, metric func(*experiments.Table) (string, float64)) {
	b.Helper()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = experiments.Run(id, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if tab != nil && metric != nil {
		name, v := metric(tab)
		b.ReportMetric(v, name)
	}
}

// fetchReduction returns the g5-vs-LRU fetch reduction (%) at the smallest
// capacity row of a Figure-3 table.
func fetchReduction(tab *experiments.Table) (string, float64) {
	row := tab.Rows[0]
	lru, g5 := row[1], row[4]
	return "g5_fetch_reduction_%", 100 * (1 - g5/lru)
}

// aggAdvantage returns agg minus LRU server hit rate (points) at the
// largest filter of a Figure-4 table.
func aggAdvantage(tab *experiments.Table) (string, float64) {
	row := tab.Rows[len(tab.Rows)-1]
	return "g5_minus_lru_hitrate_pts", row[1] - row[2]
}

// lruEdge returns LFU-minus-LRU miss probability (x1000) at list size 3
// of a Figure-5 table (at size 1 the two policies are identical by
// construction, so the interesting gap starts at 2+).
func lruEdge(tab *experiments.Table) (string, float64) {
	row := tab.Rows[2]
	return "lfu_minus_lru_missprob_milli", 1000 * (row[3] - row[2])
}

func BenchmarkFig3aClientFetchesServer(b *testing.B) { benchFigure(b, "3a", fetchReduction) }
func BenchmarkFig3bClientFetchesWrite(b *testing.B)  { benchFigure(b, "3b", fetchReduction) }

func BenchmarkFig4aServerHitRateWorkstation(b *testing.B) { benchFigure(b, "4a", aggAdvantage) }
func BenchmarkFig4bServerHitRateUsers(b *testing.B)       { benchFigure(b, "4b", aggAdvantage) }
func BenchmarkFig4cServerHitRateServer(b *testing.B)      { benchFigure(b, "4c", aggAdvantage) }

func BenchmarkFig5aSuccessorListsWorkstation(b *testing.B) { benchFigure(b, "5a", lruEdge) }
func BenchmarkFig5bSuccessorListsServer(b *testing.B)      { benchFigure(b, "5b", lruEdge) }

func BenchmarkFig7SuccessorEntropy(b *testing.B) {
	benchFigure(b, "7", func(tab *experiments.Table) (string, float64) {
		return "server_entropy_bits_k1", tab.Rows[0][3]
	})
}

func BenchmarkFig8aFilteredEntropyWrite(b *testing.B) {
	benchFigure(b, "8a", func(tab *experiments.Table) (string, float64) {
		// Predictability gain of a 500-file filter over a 10-file
		// filter at k=1.
		return "f10_minus_f500_bits", tab.Rows[0][2] - tab.Rows[0][5]
	})
}

func BenchmarkFig8bFilteredEntropyUsers(b *testing.B) {
	benchFigure(b, "8b", func(tab *experiments.Table) (string, float64) {
		return "f10_minus_f500_bits", tab.Rows[0][2] - tab.Rows[0][5]
	})
}

func BenchmarkClaimsHeadline(b *testing.B) { benchFigure(b, "claims", nil) }

// Ablation benchmarks: the design choices DESIGN.md calls out.

// Placement of speculative members: tail (paper) vs head (aggressive).
func BenchmarkAblationPlacement(b *testing.B) {
	ids := workloadIDs(b, ProfileServer)
	for _, tt := range []struct {
		name string
		p    Placement
	}{{"tail", PlacementTail}, {"head", PlacementHead}} {
		tt := tt
		b.Run(tt.name, func(b *testing.B) {
			var hitRate float64
			for i := 0; i < b.N; i++ {
				c, err := New(Config{Capacity: 300, GroupSize: 5, Placement: tt.p})
				if err != nil {
					b.Fatal(err)
				}
				for _, id := range ids {
					c.Access(id)
				}
				hitRate = c.Stats().HitRate()
			}
			b.ReportMetric(100*hitRate, "hitrate_%")
		})
	}
}

// Group construction: transitive chaining (paper) vs breadth-first.
func BenchmarkAblationStrategy(b *testing.B) {
	ids := workloadIDs(b, ProfileServer)
	for _, tt := range []struct {
		name string
		s    GroupStrategy
	}{{"chain", StrategyChain}, {"breadth", StrategyBreadth}} {
		tt := tt
		b.Run(tt.name, func(b *testing.B) {
			var fetches uint64
			for i := 0; i < b.N; i++ {
				c, err := New(Config{Capacity: 300, GroupSize: 5, Strategy: tt.s})
				if err != nil {
					b.Fatal(err)
				}
				for _, id := range ids {
					c.Access(id)
				}
				fetches = c.Stats().DemandFetches()
			}
			b.ReportMetric(float64(fetches), "fetches")
		})
	}
}

// Successor-list policy inside the aggregating cache: LRU (paper) vs LFU.
func BenchmarkAblationSuccessorPolicy(b *testing.B) {
	ids := workloadIDs(b, ProfileWorkstation)
	for _, tt := range []struct {
		name   string
		policy SuccessorPolicy
	}{{"lru", SuccessorLRU}, {"lfu", SuccessorLFU}} {
		tt := tt
		b.Run(tt.name, func(b *testing.B) {
			var fetches uint64
			for i := 0; i < b.N; i++ {
				c, err := New(Config{Capacity: 300, GroupSize: 5, SuccessorPolicy: tt.policy})
				if err != nil {
					b.Fatal(err)
				}
				for _, id := range ids {
					c.Access(id)
				}
				fetches = c.Stats().DemandFetches()
			}
			b.ReportMetric(float64(fetches), "fetches")
		})
	}
}

// Plain replacement policies on the same workload, for context.
func BenchmarkAblationBaselines(b *testing.B) {
	ids := workloadIDs(b, ProfileServer)
	for _, p := range []BaselinePolicy{BaselineLRU, BaselineLFU, BaselineCLOCK, BaselineMQ, BaselineARC, BaselineTwoQ} {
		p := p
		b.Run(string(p), func(b *testing.B) {
			var hitRate float64
			for i := 0; i < b.N; i++ {
				c, err := NewBaseline(p, 300)
				if err != nil {
					b.Fatal(err)
				}
				for _, id := range ids {
					c.Access(id)
				}
				hitRate = c.Stats().HitRate()
			}
			b.ReportMetric(100*hitRate, "hitrate_%")
		})
	}
}

// Server metadata source: filtered miss stream (§4.3) vs piggybacked full
// stream (§3).
func BenchmarkAblationPiggyback(b *testing.B) {
	ids := workloadIDs(b, ProfileWorkstation)
	for _, tt := range []struct {
		name      string
		piggyback bool
	}{{"filtered", false}, {"piggybacked", true}} {
		tt := tt
		b.Run(tt.name, func(b *testing.B) {
			var hitRate float64
			for i := 0; i < b.N; i++ {
				r, err := SimulateServer(ids, ServerSimConfig{
					FilterCapacity: 200,
					ServerCapacity: 300,
					Scheme:         ServerAggregating,
					GroupSize:      5,
					Piggyback:      tt.piggyback,
				})
				if err != nil {
					b.Fatal(err)
				}
				hitRate = r.HitRate
			}
			b.ReportMetric(100*hitRate, "hitrate_%")
		})
	}
}

// Micro-benchmarks: per-access costs of the hot paths.

func BenchmarkAccessAggregating(b *testing.B) {
	ids := workloadIDs(b, ProfileServer)
	c, err := New(Config{Capacity: 300, GroupSize: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(ids[i%len(ids)])
	}
}

func BenchmarkAccessBaselineLRU(b *testing.B) {
	ids := workloadIDs(b, ProfileServer)
	c, err := NewBaseline(BaselineLRU, 300)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(ids[i%len(ids)])
	}
}

func BenchmarkTrackerObserve(b *testing.B) {
	ids := workloadIDs(b, ProfileServer)
	tr, err := NewTracker(SuccessorLRU, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(ids[i%len(ids)])
	}
}

func BenchmarkSuccessorEntropyK1(b *testing.B) {
	ids := workloadIDs(b, ProfileServer)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SuccessorEntropy(ids, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension-study benchmarks (see EXPERIMENTS.md "Extensions").

func BenchmarkExtensionPrefetchComparison(b *testing.B) {
	benchFigure(b, "xprefetch", func(tab *experiments.Table) (string, float64) {
		// Request savings of grouping vs the last-successor prefetcher.
		agg := tab.Rows[len(tab.Rows)-1]
		last := tab.Rows[2]
		return "request_reduction_%", 100 * (1 - agg[2]/last[2])
	})
}

func BenchmarkExtensionPlacement(b *testing.B) {
	benchFigure(b, "xplacement", func(tab *experiments.Table) (string, float64) {
		// Seek advantage of grouped layout over organ pipe.
		return "grouped_vs_organpipe_ratio", tab.Rows[2][0] / tab.Rows[1][0]
	})
}

func BenchmarkExtensionHoard(b *testing.B) {
	benchFigure(b, "xhoard", func(tab *experiments.Table) (string, float64) {
		// Completion-point advantage at the tightest budget that fits a
		// few whole tasks.
		row := tab.Rows[2]
		return "closure_minus_freq_pts", row[2] - row[1]
	})
}

// Adaptive group sizing (future work §6) vs static g on the server
// workload.
func BenchmarkAblationAdaptiveGroupSize(b *testing.B) {
	ids := workloadIDs(b, ProfileServer)
	configs := []struct {
		name string
		cfg  Config
	}{
		{"static-g2", Config{Capacity: 300, GroupSize: 2}},
		{"static-g5", Config{Capacity: 300, GroupSize: 5}},
		{"static-g10", Config{Capacity: 300, GroupSize: 10}},
		{"adaptive", Config{Capacity: 300, GroupSize: 2, Adaptive: true, MinGroupSize: 1, MaxGroupSize: 10}},
	}
	for _, tt := range configs {
		tt := tt
		b.Run(tt.name, func(b *testing.B) {
			var fetches uint64
			for i := 0; i < b.N; i++ {
				c, err := New(tt.cfg)
				if err != nil {
					b.Fatal(err)
				}
				for _, id := range ids {
					c.Access(id)
				}
				fetches = c.Stats().DemandFetches()
			}
			b.ReportMetric(float64(fetches), "fetches")
		})
	}
}
